// IndexCatalog lifecycle unit tests: memtable semantics, forward-index
// and manifest round trips with corruption negatives, flush/merge/delete
// transitions, tombstone visibility, exact incremental statistics,
// recovery from the manifest, and crash-safety of publication (kill-point
// between segment write and manifest rename leaves a readable catalog).
#include "storage/catalog/index_catalog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "storage/catalog/forward_index.h"
#include "storage/catalog/manifest.h"

namespace moa {
namespace {

constexpr size_t kVocab = 64;

/// Fresh per-test directory under the gtest temp root.
std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/catalog_" +
                          name + "_" +
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name();
  std::filesystem::remove_all(dir);
  return dir;
}

IndexCatalog::Options MemoryOnly() {
  IndexCatalog::Options options;
  options.num_terms = kVocab;
  return options;
}

IndexCatalog::Options InDir(const std::string& dir) {
  IndexCatalog::Options options;
  options.num_terms = kVocab;
  options.dir = dir;
  return options;
}

std::unique_ptr<IndexCatalog> MustCreate(const IndexCatalog::Options& opts) {
  auto catalog = IndexCatalog::Create(opts);
  EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();
  return std::move(catalog).ValueOrDie();
}

/// Live (doc, tf) pairs a term's merged cursor yields.
std::vector<Posting> Scan(const CatalogState& state, TermId t) {
  std::vector<Posting> out;
  for (auto c = state.OpenMergedCursor(t, 0.0); !c->at_end(); c->next()) {
    out.push_back(Posting{c->doc(), c->tf()});
  }
  return out;
}

TEST(MemtableTest, ValidatesDocuments) {
  Memtable mt(kVocab);
  EXPECT_FALSE(mt.AddDocument({{0, 1}, {0, 2}}).ok());   // duplicate term
  EXPECT_FALSE(mt.AddDocument({{kVocab, 1}}).ok());      // out of vocabulary
  EXPECT_FALSE(mt.AddDocument({{1, 0}}).ok());           // zero tf
  EXPECT_EQ(mt.num_docs(), 0u);
  auto id = mt.AddDocument({{5, 2}, {1, 3}});            // any order
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.ValueOrDie(), 0u);
  EXPECT_EQ(mt.DocLength(0), 5u);
  ASSERT_EQ(mt.doc_terms(0).size(), 2u);
  EXPECT_EQ(mt.doc_terms(0)[0].first, 1u);  // sorted
  EXPECT_EQ(mt.postings(5).size(), 1u);
}

TEST(ForwardIndexTest, RoundTripsAndValidates) {
  const std::string dir = FreshDir("fwd");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/probe.fwd";

  ForwardIndex fwd;
  fwd.Append({{0, 1}, {3, 2}, {63, 7}});
  fwd.Append({});
  fwd.Append({{10, 4}});
  ASSERT_TRUE(WriteForwardIndex(fwd, path).ok());

  auto read = ReadForwardIndex(path, 3, kVocab);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const ForwardIndex& got = read.ValueOrDie();
  ASSERT_EQ(got.num_docs(), 3u);
  EXPECT_EQ(got.doc(0), fwd.doc(0));
  EXPECT_TRUE(got.doc(1).empty());
  EXPECT_EQ(got.DocLength(0), 10u);

  // Wrong expected doc count (the sibling segment disagrees).
  EXPECT_FALSE(ReadForwardIndex(path, 4, kVocab).ok());
  // Vocabulary too small for stored term 63.
  EXPECT_FALSE(ReadForwardIndex(path, 3, 16).ok());

  // Truncation sweep: every prefix must fail cleanly, never crash.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    const std::string trunc = dir + "/trunc.fwd";
    std::ofstream out(trunc, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_FALSE(ReadForwardIndex(trunc, 3, kVocab).ok()) << "cut=" << cut;
  }
}

TEST(ManifestTest, RoundTripsAndValidates) {
  const std::string dir = FreshDir("manifest");
  std::filesystem::create_directories(dir);

  CatalogManifest manifest;
  manifest.next_segment_id = 7;
  manifest.segments.push_back(ManifestSegment{3, 100, {2, 50, 99}});
  manifest.segments.push_back(ManifestSegment{5, 10, {}});
  ASSERT_TRUE(WriteManifest(dir, manifest).ok());

  auto read = ReadManifest(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.ValueOrDie().next_segment_id, 7u);
  ASSERT_EQ(read.ValueOrDie().segments.size(), 2u);
  EXPECT_EQ(read.ValueOrDie().segments[0].deleted,
            (std::vector<uint32_t>{2, 50, 99}));

  // Tombstone out of range.
  CatalogManifest bad = manifest;
  bad.segments[0].deleted = {100};
  ASSERT_TRUE(WriteManifest(dir, bad).ok());
  EXPECT_FALSE(ReadManifest(dir).ok());

  // Duplicate segment id.
  bad = manifest;
  bad.segments[1].id = 3;
  ASSERT_TRUE(WriteManifest(dir, bad).ok());
  EXPECT_FALSE(ReadManifest(dir).ok());

  // Segment id not below next_segment_id.
  bad = manifest;
  bad.next_segment_id = 5;
  ASSERT_TRUE(WriteManifest(dir, bad).ok());
  EXPECT_FALSE(ReadManifest(dir).ok());

  // Bad magic.
  {
    std::ofstream out(dir + "/" + kManifestFileName,
                      std::ios::binary | std::ios::trunc);
    out << "GARBAGE!" << std::string(16, '\0');
  }
  EXPECT_FALSE(ReadManifest(dir).ok());
}

TEST(IndexCatalogTest, AddDeleteMaintainsExactStats) {
  auto catalog = MustCreate(MemoryOnly());
  ASSERT_TRUE(catalog->AddDocument({{1, 2}, {2, 1}}).ok());   // id 0, len 3
  ASSERT_TRUE(catalog->AddDocument({{1, 1}, {3, 4}}).ok());   // id 1, len 5
  ASSERT_TRUE(catalog->AddDocument({{2, 3}}).ok());           // id 2, len 3

  auto state = catalog->Snapshot();
  EXPECT_EQ(state->stats().num_live_docs, 3u);
  EXPECT_EQ(state->stats().total_live_tokens, 11);
  EXPECT_EQ(state->stats().df[1], 2u);
  EXPECT_EQ(state->stats().cf[1], 3);
  EXPECT_EQ(state->stats().df[2], 2u);
  EXPECT_EQ(state->doc_space(), 3u);

  ASSERT_TRUE(catalog->DeleteDocument(0).ok());
  state = catalog->Snapshot();
  EXPECT_EQ(state->stats().num_live_docs, 2u);
  EXPECT_EQ(state->stats().total_live_tokens, 8);
  EXPECT_EQ(state->stats().df[1], 1u);
  EXPECT_EQ(state->stats().cf[1], 1);
  EXPECT_EQ(state->stats().df[2], 1u);
  // The slot remains; the document is invisible.
  EXPECT_EQ(state->doc_space(), 3u);
  EXPECT_TRUE(state->IsDeleted(0));
  EXPECT_EQ(Scan(*state, 1), (std::vector<Posting>{{1, 1}}));
  EXPECT_EQ(Scan(*state, 2), (std::vector<Posting>{{2, 3}}));

  // Double delete and bogus ids are errors.
  EXPECT_EQ(catalog->DeleteDocument(0).code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog->DeleteDocument(3).code(), StatusCode::kInvalidArgument);

  // In-flight snapshots are unaffected by later mutations.
  auto before = catalog->Snapshot();
  ASSERT_TRUE(catalog->DeleteDocument(2).ok());
  EXPECT_EQ(Scan(*before, 2), (std::vector<Posting>{{2, 3}}));
  EXPECT_TRUE(Scan(*catalog->Snapshot(), 2).empty());
}

TEST(IndexCatalogTest, MemoryOnlyCatalogRefusesFlushAndMerge) {
  auto catalog = MustCreate(MemoryOnly());
  ASSERT_TRUE(catalog->AddDocument({{1, 1}}).ok());
  EXPECT_EQ(catalog->Flush().code(), StatusCode::kFailedPrecondition);
  // With no segments a merge is a plain no-op; a non-empty run would need
  // somewhere to write.
  auto merged = catalog->Merge();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.ValueOrDie(), 0u);
}

TEST(IndexCatalogTest, FlushMergeReopenLifecycle) {
  const std::string dir = FreshDir("lifecycle");
  auto catalog = MustCreate(InDir(dir));

  // Batch 1 -> segment 1 (one tombstone carried into the flush).
  ASSERT_TRUE(catalog->AddDocuments({{{1, 2}}, {{1, 1}, {2, 2}}, {{3, 3}}})
                  .ok());
  ASSERT_TRUE(catalog->DeleteDocument(1).ok());
  ASSERT_TRUE(catalog->Flush().ok());
  // Flushing an empty memtable is a no-op.
  ASSERT_TRUE(catalog->Flush().ok());

  auto state = catalog->Snapshot();
  ASSERT_EQ(state->segments().size(), 1u);
  EXPECT_EQ(state->segments()[0]->num_deleted, 1u);
  EXPECT_TRUE(state->memtable().empty());
  EXPECT_EQ(state->doc_space(), 3u);
  EXPECT_EQ(Scan(*state, 1), (std::vector<Posting>{{0, 2}}));

  // Batch 2 -> segment 2; then a segment-level delete in segment 1.
  ASSERT_TRUE(catalog->AddDocuments({{{2, 5}}, {{1, 7}}}).ok());  // ids 3, 4
  ASSERT_TRUE(catalog->Flush().ok());
  ASSERT_TRUE(catalog->DeleteDocument(2).ok());  // seg-1 doc {3,3}
  state = catalog->Snapshot();
  ASSERT_EQ(state->segments().size(), 2u);
  EXPECT_EQ(Scan(*state, 1), (std::vector<Posting>{{0, 2}, {4, 7}}));
  EXPECT_TRUE(Scan(*state, 3).empty());
  EXPECT_EQ(state->stats().num_live_docs, 3u);

  // Reopen from disk: identical live view (memtable was empty).
  {
    auto reopened = IndexCatalog::Open(InDir(dir));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    auto rstate = reopened.ValueOrDie()->Snapshot();
    EXPECT_EQ(rstate->doc_space(), state->doc_space());
    EXPECT_EQ(rstate->stats().num_live_docs, 3u);
    EXPECT_EQ(rstate->stats().df[1], state->stats().df[1]);
    EXPECT_EQ(Scan(*rstate, 1), Scan(*state, 1));
    EXPECT_TRUE(Scan(*rstate, 3).empty());
  }

  // Merge everything: tombstones drop, ids compact (0,3,4 -> 0,1,2),
  // live statistics unchanged.
  const CatalogStats before_stats = state->stats();
  auto merged = catalog->Merge();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.ValueOrDie(), 2u);
  state = catalog->Snapshot();
  ASSERT_EQ(state->segments().size(), 1u);
  EXPECT_EQ(state->doc_space(), 3u);
  EXPECT_EQ(state->segments()[0]->num_deleted, 0u);
  EXPECT_EQ(Scan(*state, 1), (std::vector<Posting>{{0, 2}, {2, 7}}));
  EXPECT_EQ(Scan(*state, 2), (std::vector<Posting>{{1, 5}}));
  EXPECT_EQ(state->stats().df, before_stats.df);
  EXPECT_EQ(state->stats().cf, before_stats.cf);
  EXPECT_EQ(state->stats().num_live_docs, before_stats.num_live_docs);

  // The merged catalog reopens too (and the retired files are gone).
  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Scan(*reopened.ValueOrDie()->Snapshot(), 1),
            (std::vector<Posting>{{0, 2}, {2, 7}}));
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + SegmentFileName(1)));
}

TEST(IndexCatalogTest, MergedCursorAdvanceToHonorsContract) {
  // Three components (two segments + memtable) with tombstones sprinkled
  // in each; advance_to must land on the first *live* posting >= target
  // from any starting position, including cross-component skips —
  // exactly the contract the conformance suite pins for single-source
  // cursors.
  const std::string dir = FreshDir("advance");
  auto catalog = MustCreate(InDir(dir));
  const TermId t = 9;
  auto add_block = [&](uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) {
      // Every doc holds term 9; odd docs also hold term 3.
      DocTerms terms = {{t, 1 + i % 3}};
      if (i % 2 == 1) terms.push_back({3, 1});
      ASSERT_TRUE(catalog->AddDocument(terms).ok());
    }
  };
  add_block(12);
  ASSERT_TRUE(catalog->Flush().ok());
  add_block(9);
  ASSERT_TRUE(catalog->Flush().ok());
  add_block(7);  // stays in the memtable
  for (DocId d : {1u, 5u, 11u, 12u, 20u, 22u, 27u}) {
    ASSERT_TRUE(catalog->DeleteDocument(d).ok());
  }

  const auto state = catalog->Snapshot();
  const std::vector<Posting> live = Scan(*state, t);
  ASSERT_EQ(live.size(), 28u - 7u);

  const DocId space = static_cast<DocId>(state->doc_space());
  for (DocId start = 0; start <= space; ++start) {
    for (DocId target = start; target <= space + 1; ++target) {
      auto cursor = state->OpenMergedCursor(t, 0.0);
      cursor->advance_to(start);
      cursor->advance_to(target);  // second hop from a moved cursor
      const auto it = std::lower_bound(
          live.begin(), live.end(), target,
          [](const Posting& p, DocId d) { return p.doc < d; });
      if (it == live.end()) {
        EXPECT_TRUE(cursor->at_end()) << "target " << target;
      } else {
        EXPECT_EQ(cursor->doc(), it->doc) << "target " << target;
        EXPECT_EQ(cursor->tf(), it->tf) << "target " << target;
      }
      // Cursors never move backwards.
      cursor->advance_to(0);
      if (it != live.end()) EXPECT_EQ(cursor->doc(), it->doc);
    }
  }

  // advance_to(kEndDoc) exhausts; next() at end stays at end.
  auto cursor = state->OpenMergedCursor(t, 0.0);
  cursor->advance_to(kEndDoc);
  EXPECT_TRUE(cursor->at_end());
  cursor->next();
  EXPECT_TRUE(cursor->at_end());

  // size() reports the live document frequency.
  EXPECT_EQ(state->OpenMergedCursor(t, 0.0)->size(), live.size());
  EXPECT_EQ(state->OpenMergedCursor(3, 0.0)->size(), state->stats().df[3]);
}

TEST(IndexCatalogTest, SegmentDeleteIsDurable) {
  const std::string dir = FreshDir("durable_delete");
  auto catalog = MustCreate(InDir(dir));
  ASSERT_TRUE(catalog->AddDocuments({{{1, 1}}, {{1, 2}}}).ok());
  ASSERT_TRUE(catalog->Flush().ok());
  ASSERT_TRUE(catalog->DeleteDocument(0).ok());

  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto state = reopened.ValueOrDie()->Snapshot();
  EXPECT_TRUE(state->IsDeleted(0));
  EXPECT_EQ(state->stats().num_live_docs, 1u);
  EXPECT_EQ(Scan(*state, 1), (std::vector<Posting>{{1, 2}}));
}

TEST(IndexCatalogTest, MergePolicySelectsAdjacentRun) {
  const std::string dir = FreshDir("policy");
  auto catalog = MustCreate(InDir(dir));
  // Three single-doc segments; delete the middle segment's doc.
  for (uint32_t tf = 1; tf <= 3; ++tf) {
    ASSERT_TRUE(catalog->AddDocument({{1, tf}}).ok());
    ASSERT_TRUE(catalog->Flush().ok());
  }
  ASSERT_TRUE(catalog->DeleteDocument(1).ok());

  // Merge only the first two segments: the third keeps its identity but
  // its documents' ids shift down past the dropped tombstone.
  MergePolicy policy;
  policy.first = 0;
  policy.count = 2;
  auto merged = catalog->Merge(policy);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.ValueOrDie(), 2u);
  auto state = catalog->Snapshot();
  ASSERT_EQ(state->segments().size(), 2u);
  EXPECT_EQ(state->doc_space(), 2u);
  EXPECT_EQ(Scan(*state, 1), (std::vector<Posting>{{0, 1}, {1, 3}}));

  // Out-of-range runs are rejected.
  policy.first = 1;
  policy.count = 5;
  EXPECT_EQ(catalog->Merge(policy).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IndexCatalogTest, CrashBetweenSegmentWriteAndManifestIsSafe) {
  const std::string dir = FreshDir("crash");
  auto fail_point = std::make_shared<std::string>();
  IndexCatalog::Options options = InDir(dir);
  options.fault_injector = [fail_point](const std::string& point) {
    if (point == *fail_point) {
      return Status::Internal("injected crash at " + point);
    }
    return Status::OK();
  };
  auto catalog = MustCreate(options);

  ASSERT_TRUE(catalog->AddDocuments({{{1, 1}}, {{2, 2}}}).ok());
  ASSERT_TRUE(catalog->Flush().ok());
  ASSERT_TRUE(catalog->AddDocument({{1, 5}}).ok());  // id 2

  // Kill point: the flushed segment files exist on disk, but the
  // manifest never switches. The in-memory catalog refuses the flush...
  *fail_point = "flush:segment-written";
  EXPECT_FALSE(catalog->Flush().ok());
  auto state = catalog->Snapshot();
  EXPECT_EQ(state->segments().size(), 1u);
  EXPECT_EQ(state->memtable().num_docs(), 1u);
  EXPECT_EQ(Scan(*state, 1), (std::vector<Posting>{{0, 1}, {2, 5}}));

  // ...and a recovery (the "restarted process") sees the last published
  // manifest state — one segment, orphaned flush files ignored — plus the
  // unflushed document, replayed from the WAL the manifest names. Before
  // the WAL this document was lost with the memtable.
  {
    auto reopened = IndexCatalog::Open(InDir(dir));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    auto rstate = reopened.ValueOrDie()->Snapshot();
    EXPECT_EQ(rstate->segments().size(), 1u);
    EXPECT_EQ(rstate->doc_space(), 3u);
    EXPECT_EQ(rstate->stats().num_live_docs, 3u);
    EXPECT_EQ(Scan(*rstate, 1), (std::vector<Posting>{{0, 1}, {2, 5}}));
  }

  // Retrying after the "transient" failure succeeds and reuses the id.
  *fail_point = "";
  ASSERT_TRUE(catalog->Flush().ok());
  EXPECT_EQ(catalog->Snapshot()->segments().size(), 2u);

  // Same kill point for merge: state and disk stay on the old manifest.
  *fail_point = "merge:segment-written";
  EXPECT_FALSE(catalog->Merge().ok());
  EXPECT_EQ(catalog->Snapshot()->segments().size(), 2u);
  {
    auto reopened = IndexCatalog::Open(InDir(dir));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened.ValueOrDie()->Snapshot()->segments().size(), 2u);
  }
  *fail_point = "";
  auto merged = catalog->Merge();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.ValueOrDie(), 2u);
  EXPECT_EQ(Scan(*catalog->Snapshot(), 1),
            (std::vector<Posting>{{0, 1}, {2, 5}}));
}

TEST(IndexCatalogTest, OpenRejectsTamperedSidecar) {
  const std::string dir = FreshDir("tamper");
  auto catalog = MustCreate(InDir(dir));
  ASSERT_TRUE(catalog->AddDocuments({{{1, 1}}, {{2, 2}, {3, 1}}}).ok());
  ASSERT_TRUE(catalog->Flush().ok());
  catalog.reset();

  // Replace the sidecar with one whose compositions disagree with the
  // segment: recovery must refuse rather than serve skewed statistics.
  ForwardIndex wrong;
  wrong.Append({{1, 1}});
  wrong.Append({{2, 3}, {3, 1}});  // tf drifted
  ASSERT_TRUE(WriteForwardIndex(wrong, dir + "/" + ForwardFileName(1)).ok());
  EXPECT_FALSE(IndexCatalog::Open(InDir(dir)).ok());
}

TEST(IndexCatalogTest, CreateRefusesExistingCatalogDirectory) {
  const std::string dir = FreshDir("refuse");
  auto catalog = MustCreate(InDir(dir));
  ASSERT_TRUE(catalog->AddDocument({{1, 1}}).ok());
  ASSERT_TRUE(catalog->Flush().ok());
  EXPECT_FALSE(IndexCatalog::Create(InDir(dir)).ok());
}

}  // namespace
}  // namespace moa
