#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace moa {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(9);
  const int n = 20000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

}  // namespace
}  // namespace moa
