#include "storage/posting.h"

#include <gtest/gtest.h>

#include <vector>

namespace moa {
namespace {

PostingList MakeList(std::initializer_list<Posting> ps) {
  PostingList list;
  for (const auto& p : ps) list.Append(p.doc, p.tf);
  list.Seal();
  return list;
}

TEST(PostingListTest, AppendKeepsDocOrder) {
  PostingList list = MakeList({{1, 2}, {5, 1}, {9, 3}});
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].doc, 1u);
  EXPECT_EQ(list[2].tf, 3u);
}

TEST(PostingListTest, FindTfHitsAndMisses) {
  PostingList list = MakeList({{1, 2}, {5, 1}, {9, 3}});
  EXPECT_EQ(list.FindTf(5).value(), 1u);
  EXPECT_EQ(list.FindTf(9).value(), 3u);
  EXPECT_FALSE(list.FindTf(0).has_value());
  EXPECT_FALSE(list.FindTf(4).has_value());
  EXPECT_FALSE(list.FindTf(100).has_value());
}

TEST(PostingListTest, EmptyList) {
  PostingList list;
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.FindTf(1).has_value());
  EXPECT_FALSE(list.has_impact_order());
}

TEST(PostingListTest, ImpactOrderSortsByWeightDesc) {
  PostingList list = MakeList({{1, 2}, {5, 1}, {9, 3}});
  list.BuildImpactOrder({0.5, 2.0, 1.0});
  ASSERT_TRUE(list.has_impact_order());
  EXPECT_EQ(list.ByImpact(0).doc, 5u);  // weight 2.0
  EXPECT_EQ(list.ByImpact(1).doc, 9u);  // weight 1.0
  EXPECT_EQ(list.ByImpact(2).doc, 1u);  // weight 0.5
  EXPECT_DOUBLE_EQ(list.ImpactWeight(0), 2.0);
  EXPECT_DOUBLE_EQ(list.max_weight(), 2.0);
}

TEST(PostingListTest, ImpactOrderTieBrokenByDoc) {
  PostingList list = MakeList({{1, 1}, {2, 1}, {3, 1}});
  list.BuildImpactOrder({1.0, 1.0, 1.0});
  EXPECT_EQ(list.ByImpact(0).doc, 1u);
  EXPECT_EQ(list.ByImpact(1).doc, 2u);
  EXPECT_EQ(list.ByImpact(2).doc, 3u);
}

TEST(PostingListTest, ImpactWeightsNonIncreasing) {
  PostingList list = MakeList({{0, 1}, {1, 4}, {2, 2}, {3, 9}, {4, 1}});
  list.BuildImpactOrder({0.1, 0.4, 0.2, 0.9, 0.1});
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_GE(list.ImpactWeight(i - 1), list.ImpactWeight(i));
  }
}

TEST(PostingListTest, MaxWeightZeroWhenEmpty) {
  PostingList list;
  list.BuildImpactOrder({});
  EXPECT_DOUBLE_EQ(list.max_weight(), 0.0);
}

}  // namespace
}  // namespace moa
