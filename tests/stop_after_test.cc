#include "topn/stop_after.h"

#include <gtest/gtest.h>

#include "ir/exact_eval.h"
#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;
using testutil::SmallModel;
using testutil::SmallQueries;

void ExpectExact(const std::vector<ScoredDoc>& got,
                 const std::vector<ScoredDoc>& exact) {
  ASSERT_EQ(got.size(), exact.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, exact[i].doc) << "rank " << i;
  }
}

struct StopAfterCase {
  StopAfterPolicy policy;
  double bias;
};

class StopAfterTest : public ::testing::TestWithParam<StopAfterCase> {};

TEST_P(StopAfterTest, AlwaysExactRegardlessOfEstimates) {
  // STOP AFTER is a *safe* technique: even with a hostile estimate bias the
  // restart protocol must deliver the exact answer.
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  StopAfterOptions opts;
  opts.policy = GetParam().policy;
  opts.estimate_bias = GetParam().bias;
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, 10);
    auto r = StopAfterTopN(f, SmallModel(), q, 10, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectExact(r.ValueOrDie().items, exact);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, StopAfterTest,
    ::testing::Values(StopAfterCase{StopAfterPolicy::kConservative, 1.0},
                      StopAfterCase{StopAfterPolicy::kAggressive, 1.0},
                      StopAfterCase{StopAfterPolicy::kAggressive, 0.5},
                      StopAfterCase{StopAfterPolicy::kAggressive, 2.0},
                      StopAfterCase{StopAfterPolicy::kAggressive, 10.0}));

TEST(StopAfterTest, ConservativeNeverRestarts) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  StopAfterOptions opts;
  opts.policy = StopAfterPolicy::kConservative;
  auto r = StopAfterTopN(f, SmallModel(), SmallQueries()[0], 10, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().stats.restarts, 0);
}

TEST(StopAfterTest, AggressiveMaterializesFewerBytes) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  StopAfterOptions cons, aggr;
  cons.policy = StopAfterPolicy::kConservative;
  aggr.policy = StopAfterPolicy::kAggressive;
  const Query& q = SmallQueries()[0];
  auto rc = StopAfterTopN(f, SmallModel(), q, 10, cons);
  auto ra = StopAfterTopN(f, SmallModel(), q, 10, aggr);
  ASSERT_TRUE(rc.ok() && ra.ok());
  EXPECT_LT(ra.ValueOrDie().stats.cost.bytes_touched,
            rc.ValueOrDie().stats.cost.bytes_touched);
}

TEST(StopAfterTest, OverconfidentCutoffProvokesRestarts) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  StopAfterOptions opts;
  opts.policy = StopAfterPolicy::kAggressive;
  opts.estimate_bias = 50.0;  // absurdly high cutoff: first pass underflows
  int total_restarts = 0;
  for (const Query& q : SmallQueries()) {
    auto r = StopAfterTopN(f, SmallModel(), q, 10, opts);
    ASSERT_TRUE(r.ok());
    total_restarts += r.ValueOrDie().stats.restarts;
  }
  EXPECT_GT(total_restarts, 0);
}

TEST(StopAfterTest, HonestCutoffRarelyRestarts) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  StopAfterOptions opts;
  opts.policy = StopAfterPolicy::kAggressive;
  int total_restarts = 0;
  for (const Query& q : SmallQueries()) {
    auto r = StopAfterTopN(f, SmallModel(), q, 10, opts);
    ASSERT_TRUE(r.ok());
    total_restarts += r.ValueOrDie().stats.restarts;
  }
  EXPECT_LE(total_restarts, 2);
}

TEST(StopAfterTest, RejectsNonPositiveSafety) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  StopAfterOptions opts;
  opts.safety = 0.0;
  auto r = StopAfterTopN(f, SmallModel(), SmallQueries()[0], 10, opts);
  EXPECT_FALSE(r.ok());
}

TEST(StopAfterTest, NLargerThanCandidates) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  StopAfterOptions opts;
  opts.policy = StopAfterPolicy::kAggressive;
  const Query& q = SmallQueries()[0];
  auto exact = ExactRanking(f, SmallModel(), q);
  auto r = StopAfterTopN(f, SmallModel(), q, exact.size() + 100, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().items.size(), exact.size());
}

}  // namespace
}  // namespace moa
