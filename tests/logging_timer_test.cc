#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"

namespace moa {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output during tests
  MOA_LOG(Info) << "value=" << 42 << " str=" << std::string("x");
  MOA_LOG(Debug) << "below threshold";
  SetLogLevel(before);
}

TEST(LoggingTest, SinkCapturesMessagesAndPrefix) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  MOA_LOG(Info) << "captured " << 7;
  MOA_LOG(Debug) << "below threshold, never reaches the sink";
  MOA_LOG(Warning) << "warned";
  SetLogSink(nullptr);
  MOA_LOG(Error) << "";  // restored stderr writer; must not hit `captured`
  SetLogLevel(before);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[1].first, LogLevel::kWarning);
  // Prefix format: "[LEVEL HH:MM:SS.mmm tid=N file:line] message".
  const std::string& line = captured[0].second;
  EXPECT_EQ(line.rfind("[INFO ", 0), 0u) << line;
  EXPECT_NE(line.find(" tid="), std::string::npos) << line;
  EXPECT_NE(line.find("logging_timer_test.cc:"), std::string::npos) << line;
  EXPECT_NE(line.find("captured 7"), std::string::npos) << line;
  EXPECT_EQ(captured[1].second.rfind("[WARN ", 0), 0u) << captured[1].second;
  // Timestamp shape HH:MM:SS.mmm right after the "[INFO " tag.
  ASSERT_GT(line.size(), 18u);
  EXPECT_EQ(line[8], ':') << line;
  EXPECT_EQ(line[11], ':') << line;
  EXPECT_EQ(line[14], '.') << line;
}

TEST(WallTimerTest, MeasuresElapsedMonotonically) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  const int64_t t1 = timer.ElapsedNanos();
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  const int64_t t2 = timer.ElapsedNanos();
  EXPECT_GT(t1, 0);
  EXPECT_GE(t2, t1);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink += i;
  const int64_t before = timer.ElapsedNanos();
  timer.Restart();
  const int64_t after = timer.ElapsedNanos();
  EXPECT_LT(after, before);
}

TEST(ScopedTimerTest, AccumulatesIntoSink) {
  int64_t total = 0;
  {
    ScopedTimer t(&total);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(total, 0);
  const int64_t first = total;
  {
    ScopedTimer t(&total);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(total, first);
}

}  // namespace
}  // namespace moa
