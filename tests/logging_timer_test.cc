#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/timer.h"

namespace moa {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output during tests
  MOA_LOG(Info) << "value=" << 42 << " str=" << std::string("x");
  MOA_LOG(Debug) << "below threshold";
  SetLogLevel(before);
}

TEST(WallTimerTest, MeasuresElapsedMonotonically) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  const int64_t t1 = timer.ElapsedNanos();
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  const int64_t t2 = timer.ElapsedNanos();
  EXPECT_GT(t1, 0);
  EXPECT_GE(t2, t1);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink += i;
  const int64_t before = timer.ElapsedNanos();
  timer.Restart();
  const int64_t after = timer.ElapsedNanos();
  EXPECT_LT(after, before);
}

TEST(ScopedTimerTest, AccumulatesIntoSink) {
  int64_t total = 0;
  {
    ScopedTimer t(&total);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(total, 0);
  const int64_t first = total;
  {
    ScopedTimer t(&total);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(total, first);
}

}  // namespace
}  // namespace moa
