#include "ir/collection.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace moa {
namespace {

TEST(CollectionTest, GenerateValidatesConfig) {
  CollectionConfig config;
  config.num_docs = 0;
  EXPECT_FALSE(Collection::Generate(config).ok());
  config = {};
  config.vocabulary = 0;
  EXPECT_FALSE(Collection::Generate(config).ok());
  config = {};
  config.mean_doc_length = 0;
  EXPECT_FALSE(Collection::Generate(config).ok());
  config = {};
  config.zipf_skew = -0.5;
  EXPECT_FALSE(Collection::Generate(config).ok());
}

TEST(CollectionTest, ShapeMatchesConfig) {
  const Collection& c = testutil::SmallCollection();
  EXPECT_EQ(c.inverted_file().num_docs(), 2000u);
  EXPECT_EQ(c.inverted_file().num_terms(), 3000u);
}

TEST(CollectionTest, MeanDocLengthApproximatelyConfigured) {
  const Collection& c = testutil::SmallCollection();
  EXPECT_NEAR(c.inverted_file().AverageDocLength(), 120.0, 12.0);
}

TEST(CollectionTest, DeterministicForSeed) {
  CollectionConfig config;
  config.num_docs = 100;
  config.vocabulary = 200;
  config.seed = 5;
  auto a = Collection::Generate(config);
  auto b = Collection::Generate(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const InvertedFile& fa = a.ValueOrDie().inverted_file();
  const InvertedFile& fb = b.ValueOrDie().inverted_file();
  ASSERT_EQ(fa.num_postings(), fb.num_postings());
  for (TermId t = 0; t < fa.num_terms(); ++t) {
    ASSERT_EQ(fa.list(t).postings(), fb.list(t).postings()) << "term " << t;
  }
}

TEST(CollectionTest, DifferentSeedsDiffer) {
  CollectionConfig config;
  config.num_docs = 100;
  config.vocabulary = 200;
  config.seed = 5;
  auto a = Collection::Generate(config);
  config.seed = 6;
  auto b = Collection::Generate(config);
  EXPECT_NE(a.ValueOrDie().inverted_file().total_tokens(),
            b.ValueOrDie().inverted_file().total_tokens());
}

TEST(CollectionTest, TermIdsAreFrequencyRanked) {
  // Term 0 (Zipf rank 1) should have (much) higher df than term 100.
  const InvertedFile& f = testutil::SmallCollection().inverted_file();
  EXPECT_GT(f.DocFrequency(0), f.DocFrequency(100));
  EXPECT_GT(f.DocFrequency(0), f.DocFrequency(1000));
}

TEST(CollectionTest, ZipfHeadDominatesVolume) {
  // The paper's premise: few frequent terms hold most postings volume.
  const InvertedFile& f = testutil::SmallCollection().inverted_file();
  int64_t head = 0;
  const TermId head_terms = static_cast<TermId>(f.num_terms() / 10);  // 10%
  for (TermId t = 0; t < head_terms; ++t) head += f.DocFrequency(t);
  EXPECT_GT(static_cast<double>(head) /
                static_cast<double>(f.num_postings()),
            0.5);
}

TEST(CollectionTest, DocLengthsConsistentWithPostings) {
  const InvertedFile& f = testutil::SmallCollection().inverted_file();
  // Sum of tf over all lists equals sum of doc lengths.
  int64_t tf_sum = 0;
  for (TermId t = 0; t < f.num_terms(); ++t) {
    const PostingList& list = f.list(t);
    for (size_t i = 0; i < list.size(); ++i) tf_sum += list[i].tf;
  }
  EXPECT_EQ(tf_sum, f.total_tokens());
}

}  // namespace
}  // namespace moa
