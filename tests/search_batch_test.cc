// SearchBatch acceptance: concurrent fan-out must be invisible in the
// results — parallelism N returns bit-identical rankings to sequential
// Search for every registered strategy — and the aggregate stats must be
// coherent. The concurrency stress tests double as the TSan targets for
// the shared SparseIndexCache and the ThreadPool.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine/database.h"
#include "ir/query_gen.h"

namespace moa {
namespace {

DatabaseConfig TestConfig() {
  DatabaseConfig config;
  config.collection.num_docs = 1500;
  config.collection.vocabulary = 2500;
  config.collection.mean_doc_length = 100;
  config.collection.seed = 74755;
  config.fragmentation.small_volume_fraction = 0.05;
  return config;
}

class SearchBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = MmDatabase::Open(TestConfig());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).ValueOrDie().release();
    QueryWorkloadConfig qconfig;
    qconfig.num_queries = 24;
    qconfig.terms_per_query = 4;
    qconfig.distribution = QueryTermDistribution::kMixed;
    qconfig.seed = 4242;
    queries_ = new std::vector<Query>(
        GenerateQueries(db_->collection(), qconfig).ValueOrDie());
  }

  static MmDatabase* db_;
  static std::vector<Query>* queries_;
};

MmDatabase* SearchBatchTest::db_ = nullptr;
std::vector<Query>* SearchBatchTest::queries_ = nullptr;

void ExpectIdenticalTopN(const TopNResult& a, const TopNResult& b,
                         const char* label) {
  ASSERT_EQ(a.items.size(), b.items.size()) << label;
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].doc, b.items[i].doc) << label << " rank " << i;
    // Bit-identical, not approximately equal: both paths must run the
    // exact same float operations in the same order.
    EXPECT_EQ(a.items[i].score, b.items[i].score) << label << " rank " << i;
  }
}

TEST_F(SearchBatchTest, ParallelMatchesSequentialForEveryStrategy) {
  for (PhysicalStrategy s : AllStrategies()) {
    SearchOptions opts;
    opts.n = 10;
    opts.safe_only = false;
    opts.force = s;

    std::vector<SearchResult> sequential;
    for (const Query& q : *queries_) {
      auto r = db_->Search(q, opts);
      ASSERT_TRUE(r.ok()) << StrategyName(s) << ": " << r.status().ToString();
      sequential.push_back(std::move(r).ValueOrDie());
    }

    auto batch = db_->SearchBatch(*queries_, opts, 4);
    ASSERT_TRUE(batch.ok()) << StrategyName(s) << ": "
                            << batch.status().ToString();
    const BatchSearchResult& b = batch.ValueOrDie();
    ASSERT_EQ(b.results.size(), queries_->size()) << StrategyName(s);
    for (size_t i = 0; i < queries_->size(); ++i) {
      EXPECT_EQ(b.results[i].strategy, s);
      ExpectIdenticalTopN(sequential[i].top, b.results[i].top,
                          StrategyName(s));
    }
  }
}

TEST_F(SearchBatchTest, PlannerChosenBatchMatchesSequential) {
  SearchOptions opts;
  opts.n = 10;
  auto batch = db_->SearchBatch(*queries_, opts, 4);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (size_t i = 0; i < queries_->size(); ++i) {
    auto seq = db_->Search((*queries_)[i], opts);
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(batch.ValueOrDie().results[i].strategy,
              seq.ValueOrDie().strategy);
    ExpectIdenticalTopN(seq.ValueOrDie().top,
                        batch.ValueOrDie().results[i].top, "planner");
  }
}

TEST_F(SearchBatchTest, StatsAreCoherent) {
  SearchOptions opts;
  opts.n = 10;
  auto batch = db_->SearchBatch(*queries_, opts, 2);
  ASSERT_TRUE(batch.ok());
  const BatchStats& stats = batch.ValueOrDie().stats;
  EXPECT_EQ(stats.num_queries, queries_->size());
  EXPECT_EQ(stats.parallelism, 2u);
  EXPECT_GT(stats.wall_millis, 0.0);
  EXPECT_GT(stats.qps, 0.0);
  // Percentiles come from one histogram: they must be ordered.
  EXPECT_LE(stats.p50_millis, stats.p95_millis);
  EXPECT_LE(stats.p95_millis, stats.p99_millis);
  EXPECT_GT(stats.total_cost.Scalar(), 0.0);
}

TEST_F(SearchBatchTest, ParallelismIsClampedToBatchSize) {
  std::vector<Query> two(queries_->begin(), queries_->begin() + 2);
  SearchOptions opts;
  opts.n = 5;
  auto batch = db_->SearchBatch(two, opts, 16);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.ValueOrDie().stats.parallelism, 2u);
}

TEST_F(SearchBatchTest, EmptyBatchIsOkAndEmpty) {
  SearchOptions opts;
  auto batch = db_->SearchBatch({}, opts, 4);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch.ValueOrDie().results.empty());
  EXPECT_EQ(batch.ValueOrDie().stats.num_queries, 0u);
}

TEST_F(SearchBatchTest, ConcurrentSparseProbeSharesOneCache) {
  // The TSan money test: many workers force the sparse-probe strategy at
  // once, racing to build the shared per-term sparse indexes. A fresh
  // database isolates the cache-fill from earlier tests.
  auto db = MmDatabase::Open(TestConfig());
  ASSERT_TRUE(db.ok());
  SearchOptions opts;
  opts.n = 10;
  opts.safe_only = false;
  opts.force = PhysicalStrategy::kQualitySwitchSparse;

  auto batch = db.ValueOrDie()->SearchBatch(*queries_, opts, 8);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  // Re-running over the now-warm cache must not change anything.
  auto warm = db.ValueOrDie()->SearchBatch(*queries_, opts, 8);
  ASSERT_TRUE(warm.ok());
  for (size_t i = 0; i < queries_->size(); ++i) {
    ExpectIdenticalTopN(batch.ValueOrDie().results[i].top,
                        warm.ValueOrDie().results[i].top, "warm cache");
  }
}

TEST_F(SearchBatchTest, ConcurrentMixedStrategiesOverOneDatabase) {
  // Two batches with different forced strategies genuinely overlapping
  // over the same database instance (each from its own thread, each with
  // its own pool) — exercises the full read-only sharing contract.
  SearchOptions sparse, maxscore;
  sparse.n = 10;
  sparse.safe_only = false;
  sparse.force = PhysicalStrategy::kQualitySwitchSparse;
  maxscore.n = 10;
  maxscore.force = PhysicalStrategy::kMaxScore;

  Status status_a = Status::OK(), status_b = Status::OK();
  std::thread ta([&] {
    auto r = db_->SearchBatch(*queries_, sparse, 4);
    status_a = r.status();
  });
  std::thread tb([&] {
    auto r = db_->SearchBatch(*queries_, maxscore, 4);
    status_b = r.status();
  });
  ta.join();
  tb.join();
  EXPECT_TRUE(status_a.ok()) << status_a.ToString();
  EXPECT_TRUE(status_b.ok()) << status_b.ToString();
}

}  // namespace
}  // namespace moa
