#include "engine/database.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace moa {
namespace {

DatabaseConfig TestConfig() {
  DatabaseConfig config;
  config.collection.num_docs = 1500;
  config.collection.vocabulary = 2500;
  config.collection.mean_doc_length = 100;
  config.collection.seed = 31337;
  config.fragmentation.small_volume_fraction = 0.05;
  return config;
}

class MmDatabaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = MmDatabase::Open(TestConfig());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).ValueOrDie().release();
    QueryWorkloadConfig qconfig;
    qconfig.num_queries = 6;
    qconfig.terms_per_query = 3;
    qconfig.distribution = QueryTermDistribution::kMixed;
    queries_ = new std::vector<Query>(
        GenerateQueries(db_->collection(), qconfig).ValueOrDie());
  }

  static MmDatabase* db_;
  static std::vector<Query>* queries_;
};

MmDatabase* MmDatabaseTest::db_ = nullptr;
std::vector<Query>* MmDatabaseTest::queries_ = nullptr;

TEST_F(MmDatabaseTest, OpenBuildsAllComponents) {
  EXPECT_EQ(db_->file().num_docs(), 1500u);
  EXPECT_GT(db_->fragmentation().term_count(FragmentId::kSmall), 0u);
  EXPECT_EQ(db_->model().name(), "bm25");
}

TEST_F(MmDatabaseTest, OpenRejectsBadConfig) {
  DatabaseConfig bad = TestConfig();
  bad.collection.num_docs = 0;
  EXPECT_FALSE(MmDatabase::Open(bad).ok());
}

TEST_F(MmDatabaseTest, SearchSafeMatchesGroundTruthSet) {
  for (const Query& q : *queries_) {
    SearchOptions opts;
    opts.n = 10;
    auto r = db_->Search(q, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto truth = db_->GroundTruth(q, 10);
    auto scores = db_->GroundTruthScores(q);
    ASSERT_EQ(r.ValueOrDie().top.items.size(), truth.size());
    const double nth = truth.empty() ? 0.0 : truth.back().score;
    for (const auto& sd : r.ValueOrDie().top.items) {
      EXPECT_GE(scores[sd.doc] + 1e-9, nth);
    }
    EXPECT_TRUE(IsSafeStrategy(r.ValueOrDie().strategy));
  }
}

TEST_F(MmDatabaseTest, EveryStrategyExecutes) {
  const Query& q = (*queries_)[0];
  for (PhysicalStrategy s : AllStrategies()) {
    auto r = db_->Execute(s, q, 5);
    ASSERT_TRUE(r.ok()) << StrategyName(s) << ": " << r.status().ToString();
    EXPECT_LE(r.ValueOrDie().items.size(), 5u) << StrategyName(s);
  }
}

TEST_F(MmDatabaseTest, SafeStrategiesAgreeOnTopSet) {
  const Query& q = (*queries_)[1];
  auto truth = db_->GroundTruth(q, 10);
  auto scores = db_->GroundTruthScores(q);
  const double nth = truth.empty() ? 0.0 : truth.back().score;
  for (PhysicalStrategy s : AllStrategies()) {
    if (!IsSafeStrategy(s)) continue;
    auto r = db_->Execute(s, q, 10);
    ASSERT_TRUE(r.ok()) << StrategyName(s);
    ASSERT_EQ(r.ValueOrDie().items.size(), truth.size()) << StrategyName(s);
    for (const auto& sd : r.ValueOrDie().items) {
      EXPECT_GE(scores[sd.doc] + 1e-9, nth)
          << StrategyName(s) << " returned doc " << sd.doc;
    }
  }
}

TEST_F(MmDatabaseTest, ForcedStrategyIsUsed) {
  SearchOptions opts;
  opts.n = 5;
  opts.force = PhysicalStrategy::kHeap;
  auto r = db_->Search((*queries_)[2], opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().strategy, PhysicalStrategy::kHeap);
}

TEST_F(MmDatabaseTest, UnsafeSearchAllowsFragmentStrategy) {
  SearchOptions opts;
  opts.n = 5;
  opts.safe_only = false;
  auto r = db_->Search((*queries_)[3], opts);
  ASSERT_TRUE(r.ok());
  // Whatever was chosen must have been the cheapest alternative.
  EXPECT_GT(r.ValueOrDie().estimate.scalar, 0.0);
}

TEST_F(MmDatabaseTest, ExplainListsEveryCandidateWithCostAndReject) {
  QueryRequest request;
  request.query = (*queries_)[0];
  auto report = db_->ExplainSearch(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ExplainReport& r = report.ValueOrDie();

  // Structured decision: every registered strategy appears exactly once,
  // the chosen one carries reject kNone, and in static mode (full file +
  // fragmentation installed) every candidate is costed.
  EXPECT_FALSE(r.decision.forced);
  EXPECT_EQ(r.decision.chosen.reject, PlanReject::kNone);
  EXPECT_EQ(r.decision.chosen.strategy, r.decision.strategy);
  ASSERT_EQ(r.decision.candidates.size(), AllStrategies().size());
  size_t none_count = 0;
  double prev_scalar = -1.0;
  for (const PlanCandidate& c : r.decision.candidates) {
    if (c.reject == PlanReject::kNone) ++none_count;
    ASSERT_TRUE(c.costed) << StrategyName(c.strategy);
    EXPECT_GT(c.scalar, 0.0) << StrategyName(c.strategy);
    EXPECT_GE(c.scalar, prev_scalar) << "not cheapest-first";
    prev_scalar = c.scalar;
  }
  EXPECT_EQ(none_count, 1u);
  EXPECT_FALSE(r.storage.empty());

  // The rendered text still carries the classic markers.
  const std::string text = r.ToString();
  EXPECT_NE(text.find("chosen:"), std::string::npos);
  EXPECT_NE(text.find("alternatives"), std::string::npos);
  EXPECT_NE(text.find("storage:"), std::string::npos);
}

TEST_F(MmDatabaseTest, PlannerChoiceIsReportedInExplain) {
  // Regression for the removed hard-coded default: an unforced request
  // must be *planned* (not defaulted), and Explain must report the same
  // choice with the losing candidates' predictions visible.
  QueryRequest request;
  request.query = (*queries_)[1];
  auto search = db_->Search(request);
  ASSERT_TRUE(search.ok()) << search.status().ToString();
  EXPECT_TRUE(search.ValueOrDie().planned);
  EXPECT_TRUE(IsSafeStrategy(search.ValueOrDie().strategy));
  EXPECT_DOUBLE_EQ(search.ValueOrDie().predicted_quality, 1.0);

  auto report = db_->ExplainSearch(request);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.ValueOrDie().decision.strategy,
            search.ValueOrDie().strategy);
  EXPECT_FALSE(report.ValueOrDie().decision.forced);

  // A forced request reports forced=true and marks an eligible loser.
  request.options.strategy = PhysicalStrategy::kFullSort;
  auto forced = db_->ExplainSearch(request);
  ASSERT_TRUE(forced.ok());
  EXPECT_TRUE(forced.ValueOrDie().decision.forced);
  EXPECT_EQ(forced.ValueOrDie().decision.strategy,
            PhysicalStrategy::kFullSort);
  bool saw_forced_other = false;
  for (const PlanCandidate& c : forced.ValueOrDie().decision.candidates) {
    saw_forced_other |= c.reject == PlanReject::kForcedOther;
  }
  EXPECT_TRUE(saw_forced_other);
}

TEST_F(MmDatabaseTest, ExplainReportsCodecAndSkippedBlocksOverSegment) {
  // Acceptance: over a block-structured segment, a pruned query's explain
  // must name the codec and show a nonzero skipped-block count (block-max
  // pruning at work). Small blocks make skips plentiful.
  const std::string path =
      std::string(::testing::TempDir()) + "/db_explain_blocks.moaseg";
  ASSERT_TRUE(db_->SaveSegment(path, /*block_size=*/8).ok());
  ASSERT_TRUE(db_->AttachSegment(path).ok());
  QueryRequest request;
  request.n = 5;
  request.options.strategy = PhysicalStrategy::kMaxScore;
  int64_t max_skipped = 0;
  for (const Query& q : *queries_) {
    request.query = q;
    auto report = db_->ExplainSearch(request);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const ExplainReport& r = report.ValueOrDie();
    EXPECT_NE(r.storage.find("bit-packed codec"), std::string::npos)
        << r.storage;
    ASSERT_TRUE(r.has_blocks) << r.ToString();
    EXPECT_GT(r.blocks_decoded, 0);
    max_skipped = std::max(max_skipped, r.blocks_skipped);
    // The text rendering keeps the historical block line.
    EXPECT_NE(r.ToString().find("blocks: decoded "), std::string::npos);
  }
  db_->DetachSegment();
  std::remove(path.c_str());
  EXPECT_GT(max_skipped, 0) << "no query skipped any block";
}

TEST_F(MmDatabaseTest, SearchReportsWallTimeAndStats) {
  SearchOptions opts;
  opts.n = 10;
  auto r = db_->Search((*queries_)[4], opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.ValueOrDie().wall_millis, 0.0);
  EXPECT_GT(r.ValueOrDie().top.stats.cost.Scalar(), 0.0);
}

}  // namespace
}  // namespace moa
