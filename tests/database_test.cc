#include "engine/database.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace moa {
namespace {

DatabaseConfig TestConfig() {
  DatabaseConfig config;
  config.collection.num_docs = 1500;
  config.collection.vocabulary = 2500;
  config.collection.mean_doc_length = 100;
  config.collection.seed = 31337;
  config.fragmentation.small_volume_fraction = 0.05;
  return config;
}

class MmDatabaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = MmDatabase::Open(TestConfig());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).ValueOrDie().release();
    QueryWorkloadConfig qconfig;
    qconfig.num_queries = 6;
    qconfig.terms_per_query = 3;
    qconfig.distribution = QueryTermDistribution::kMixed;
    queries_ = new std::vector<Query>(
        GenerateQueries(db_->collection(), qconfig).ValueOrDie());
  }

  static MmDatabase* db_;
  static std::vector<Query>* queries_;
};

MmDatabase* MmDatabaseTest::db_ = nullptr;
std::vector<Query>* MmDatabaseTest::queries_ = nullptr;

TEST_F(MmDatabaseTest, OpenBuildsAllComponents) {
  EXPECT_EQ(db_->file().num_docs(), 1500u);
  EXPECT_GT(db_->fragmentation().term_count(FragmentId::kSmall), 0u);
  EXPECT_EQ(db_->model().name(), "bm25");
}

TEST_F(MmDatabaseTest, OpenRejectsBadConfig) {
  DatabaseConfig bad = TestConfig();
  bad.collection.num_docs = 0;
  EXPECT_FALSE(MmDatabase::Open(bad).ok());
}

TEST_F(MmDatabaseTest, SearchSafeMatchesGroundTruthSet) {
  for (const Query& q : *queries_) {
    SearchOptions opts;
    opts.n = 10;
    auto r = db_->Search(q, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto truth = db_->GroundTruth(q, 10);
    auto scores = db_->GroundTruthScores(q);
    ASSERT_EQ(r.ValueOrDie().top.items.size(), truth.size());
    const double nth = truth.empty() ? 0.0 : truth.back().score;
    for (const auto& sd : r.ValueOrDie().top.items) {
      EXPECT_GE(scores[sd.doc] + 1e-9, nth);
    }
    EXPECT_TRUE(IsSafeStrategy(r.ValueOrDie().strategy));
  }
}

TEST_F(MmDatabaseTest, EveryStrategyExecutes) {
  const Query& q = (*queries_)[0];
  for (PhysicalStrategy s : AllStrategies()) {
    auto r = db_->Execute(s, q, 5);
    ASSERT_TRUE(r.ok()) << StrategyName(s) << ": " << r.status().ToString();
    EXPECT_LE(r.ValueOrDie().items.size(), 5u) << StrategyName(s);
  }
}

TEST_F(MmDatabaseTest, SafeStrategiesAgreeOnTopSet) {
  const Query& q = (*queries_)[1];
  auto truth = db_->GroundTruth(q, 10);
  auto scores = db_->GroundTruthScores(q);
  const double nth = truth.empty() ? 0.0 : truth.back().score;
  for (PhysicalStrategy s : AllStrategies()) {
    if (!IsSafeStrategy(s)) continue;
    auto r = db_->Execute(s, q, 10);
    ASSERT_TRUE(r.ok()) << StrategyName(s);
    ASSERT_EQ(r.ValueOrDie().items.size(), truth.size()) << StrategyName(s);
    for (const auto& sd : r.ValueOrDie().items) {
      EXPECT_GE(scores[sd.doc] + 1e-9, nth)
          << StrategyName(s) << " returned doc " << sd.doc;
    }
  }
}

TEST_F(MmDatabaseTest, ForcedStrategyIsUsed) {
  SearchOptions opts;
  opts.n = 5;
  opts.force = PhysicalStrategy::kHeap;
  auto r = db_->Search((*queries_)[2], opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().strategy, PhysicalStrategy::kHeap);
}

TEST_F(MmDatabaseTest, UnsafeSearchAllowsFragmentStrategy) {
  SearchOptions opts;
  opts.n = 5;
  opts.safe_only = false;
  auto r = db_->Search((*queries_)[3], opts);
  ASSERT_TRUE(r.ok());
  // Whatever was chosen must have been the cheapest alternative.
  EXPECT_GT(r.ValueOrDie().estimate.scalar, 0.0);
}

TEST_F(MmDatabaseTest, ExplainListsAlternatives) {
  SearchOptions opts;
  auto text = db_->ExplainSearch((*queries_)[0], opts);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.ValueOrDie().find("chosen:"), std::string::npos);
}

TEST_F(MmDatabaseTest, ExplainReportsCodecAndSkippedBlocksOverSegment) {
  // Acceptance: over a block-structured segment, a pruned query's explain
  // must name the codec and show a nonzero skipped-block count (block-max
  // pruning at work). Small blocks make skips plentiful.
  const std::string path =
      std::string(::testing::TempDir()) + "/db_explain_blocks.moaseg";
  ASSERT_TRUE(db_->SaveSegment(path, /*block_size=*/8).ok());
  ASSERT_TRUE(db_->AttachSegment(path).ok());
  SearchOptions opts;
  opts.n = 5;
  opts.force = PhysicalStrategy::kMaxScore;
  long long max_skipped = 0;
  for (const Query& q : *queries_) {
    auto text = db_->ExplainSearch(q, opts);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    const std::string& s = text.ValueOrDie();
    EXPECT_NE(s.find("bit-packed codec"), std::string::npos) << s;
    const auto pos = s.find("blocks: decoded ");
    ASSERT_NE(pos, std::string::npos) << s;
    const auto skipped_pos = s.find("skipped ", pos);
    ASSERT_NE(skipped_pos, std::string::npos) << s;
    max_skipped = std::max(
        max_skipped, std::atoll(s.c_str() + skipped_pos + 8));
  }
  db_->DetachSegment();
  std::remove(path.c_str());
  EXPECT_GT(max_skipped, 0) << "no query skipped any block";
}

TEST_F(MmDatabaseTest, SearchReportsWallTimeAndStats) {
  SearchOptions opts;
  opts.n = 10;
  auto r = db_->Search((*queries_)[4], opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.ValueOrDie().wall_millis, 0.0);
  EXPECT_GT(r.ValueOrDie().top.stats.cost.Scalar(), 0.0);
}

}  // namespace
}  // namespace moa
