#include "storage/sparse_index.h"

#include <gtest/gtest.h>

#include "common/cost_ticker.h"

namespace moa {
namespace {

PostingList EveryThirdDoc(int n) {
  PostingList list;
  for (int i = 0; i < n; ++i) {
    list.Append(static_cast<DocId>(3 * i), static_cast<uint32_t>(i % 5 + 1));
  }
  return list;
}

TEST(SparseIndexTest, ProbeFindsEveryPresentDoc) {
  PostingList list = EveryThirdDoc(100);
  SparseIndex index(&list, 8);
  for (int i = 0; i < 100; ++i) {
    auto tf = index.Probe(static_cast<DocId>(3 * i));
    ASSERT_TRUE(tf.has_value()) << "doc " << 3 * i;
    EXPECT_EQ(*tf, static_cast<uint32_t>(i % 5 + 1));
  }
}

TEST(SparseIndexTest, ProbeMissesAbsentDocs) {
  PostingList list = EveryThirdDoc(100);
  SparseIndex index(&list, 8);
  EXPECT_FALSE(index.Probe(1).has_value());
  EXPECT_FALSE(index.Probe(2).has_value());
  EXPECT_FALSE(index.Probe(298).has_value());
  EXPECT_FALSE(index.Probe(1000).has_value());
}

TEST(SparseIndexTest, DirectoryIsNonDense) {
  PostingList list = EveryThirdDoc(1000);
  SparseIndex index(&list, 64);
  EXPECT_EQ(index.num_blocks(), (1000 + 63) / 64);
  EXPECT_LT(index.directory_entries(), list.size() / 10);
}

TEST(SparseIndexTest, BlockSizeOneIsDense) {
  PostingList list = EveryThirdDoc(50);
  SparseIndex index(&list, 1);
  EXPECT_EQ(index.num_blocks(), 50u);
  EXPECT_EQ(index.Probe(3 * 17).value(), static_cast<uint32_t>(17 % 5 + 1));
}

TEST(SparseIndexTest, EmptyListNeverMatches) {
  PostingList list;
  SparseIndex index(&list, 8);
  EXPECT_FALSE(index.Probe(0).has_value());
}

TEST(SparseIndexTest, DefaultConstructedIsInert) {
  SparseIndex index;
  EXPECT_FALSE(index.Probe(5).has_value());
}

TEST(SparseIndexTest, ProbeCostBoundedByBlockSize) {
  PostingList list = EveryThirdDoc(10000);
  SparseIndex index(&list, 32);
  CostScope scope;
  index.Probe(3 * 5000);
  CostCounters c = scope.Snapshot();
  EXPECT_LE(c.sequential_reads, 32);
  EXPECT_GE(c.random_reads, 1);
}

TEST(SparseIndexTest, SmallerBlocksCostFewerSequentialReads) {
  PostingList list = EveryThirdDoc(10000);
  SparseIndex coarse(&list, 256);
  SparseIndex fine(&list, 8);
  CostScope s1;
  coarse.Probe(3 * 9999);
  const int64_t coarse_seq = s1.Snapshot().sequential_reads;
  CostScope s2;
  fine.Probe(3 * 9999);
  const int64_t fine_seq = s2.Snapshot().sequential_reads;
  EXPECT_LT(fine_seq, coarse_seq);
}

}  // namespace
}  // namespace moa
