// WAL unit tests: record framing round trips, CRC rejection, torn-tail
// truncation at every byte boundary, rotation naming, fsync batching,
// group-commit rollback (TruncateTo), and catalog-level recovery to
// exactly the acknowledged writes — including the WAL-upgrade path for
// pre-WAL catalogs and the once-WAL-always-WAL reopen rule.
#include "storage/catalog/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "storage/catalog/index_catalog.h"
#include "storage/catalog/manifest.h"

namespace moa {
namespace {

constexpr size_t kVocab = 32;

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/wal_" + name +
                          "_" +
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

/// Truncates the file at `path` to `size` bytes (simulating a torn
/// append: the crash cut the tail mid-record).
void TruncateFile(const std::string& path, uint64_t size) {
  std::filesystem::resize_file(path, size);
}

/// Flips one byte in the middle of the file (bit rot / misdirected write).
void CorruptByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

TEST(WalTest, FileNameFormatsSequence) {
  EXPECT_EQ(WalFileName(1), "wal_000001.log");
  EXPECT_EQ(WalFileName(42), "wal_000042.log");
}

TEST(WalTest, RoundTripsRecords) {
  const std::string path = FreshDir("roundtrip") + "/wal_000001.log";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  auto& w = *writer.ValueOrDie();
  // Out-of-order input: the payload canonicalizes to ascending terms.
  ASSERT_TRUE(w.AppendAdd({{5, 2}, {1, 3}}).ok());
  ASSERT_TRUE(w.AppendAdd({}).ok());  // empty document is legal
  ASSERT_TRUE(w.AppendDelete(7).ok());
  ASSERT_TRUE(w.Sync().ok());

  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  const WalReplay& r = replay.ValueOrDie();
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.valid_bytes, FileSize(path));
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].type, WalRecord::kAdd);
  EXPECT_EQ(r.records[0].terms, (DocTerms{{1, 3}, {5, 2}}));
  EXPECT_TRUE(r.records[1].terms.empty());
  EXPECT_EQ(r.records[2].type, WalRecord::kDelete);
  EXPECT_EQ(r.records[2].doc, 7u);
}

TEST(WalTest, ReplayTruncatesTornTailAtEveryBoundary) {
  const std::string dir = FreshDir("torn");
  // Reference log: two records; cutting anywhere inside the second must
  // replay exactly the first and truncate the file back to it.
  const std::string ref = dir + "/ref.log";
  uint64_t first_end = 0;
  uint64_t full_end = 0;
  {
    auto writer = WalWriter::Create(ref);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.ValueOrDie()->AppendAdd({{1, 2}, {3, 1}}).ok());
    first_end = writer.ValueOrDie()->appended_bytes();
    ASSERT_TRUE(writer.ValueOrDie()->AppendDelete(0).ok());
    ASSERT_TRUE(writer.ValueOrDie()->Sync().ok());
    full_end = writer.ValueOrDie()->appended_bytes();
  }

  for (uint64_t cut = first_end; cut < full_end; ++cut) {
    const std::string path = dir + "/cut_" + std::to_string(cut) + ".log";
    std::filesystem::copy_file(ref, path);
    TruncateFile(path, cut);
    auto replay = ReplayWal(path);
    ASSERT_TRUE(replay.ok()) << "cut at " << cut << ": "
                             << replay.status().ToString();
    EXPECT_EQ(replay.ValueOrDie().records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(replay.ValueOrDie().truncated, cut != first_end);
    EXPECT_EQ(replay.ValueOrDie().valid_bytes, first_end);
    // The truncation is physical: the torn bytes are gone.
    EXPECT_EQ(FileSize(path), first_end) << "cut at " << cut;
  }
}

TEST(WalTest, ReplayStopsAtCorruptRecord) {
  const std::string dir = FreshDir("corrupt");
  const std::string path = dir + "/wal_000001.log";
  uint64_t first_end = 0;
  {
    auto writer = WalWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.ValueOrDie()->AppendAdd({{1, 1}}).ok());
    first_end = writer.ValueOrDie()->appended_bytes();
    ASSERT_TRUE(writer.ValueOrDie()->AppendAdd({{2, 2}}).ok());
    ASSERT_TRUE(writer.ValueOrDie()->Sync().ok());
  }
  // Flip a payload byte of the second record: its CRC check fails, the
  // first record survives, the bad tail is cut.
  CorruptByte(path, first_end + 9);
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay.ValueOrDie().records.size(), 1u);
  EXPECT_TRUE(replay.ValueOrDie().truncated);
  EXPECT_EQ(FileSize(path), first_end);
}

TEST(WalTest, ReplayRejectsBadHeader) {
  const std::string dir = FreshDir("header");
  const std::string path = dir + "/wal_000001.log";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAWAL!";
  }
  EXPECT_FALSE(ReplayWal(path).ok());
  EXPECT_FALSE(ReplayWal(dir + "/missing.log").ok());
}

TEST(WalTest, TruncateToRollsBackUnacknowledgedRecords) {
  const std::string path = FreshDir("rollback") + "/wal_000001.log";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  auto& w = *writer.ValueOrDie();
  ASSERT_TRUE(w.AppendAdd({{1, 1}}).ok());
  ASSERT_TRUE(w.Sync().ok());
  const uint64_t mark = w.appended_bytes();

  // A failed group: two records appended, then rolled back.
  ASSERT_TRUE(w.AppendAdd({{2, 2}}).ok());
  ASSERT_TRUE(w.AppendDelete(0).ok());
  ASSERT_TRUE(w.TruncateTo(mark).ok());
  EXPECT_EQ(w.appended_bytes(), mark);

  // The writer keeps appending correctly after the rollback.
  ASSERT_TRUE(w.AppendAdd({{3, 3}}).ok());
  ASSERT_TRUE(w.Sync().ok());

  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay.ValueOrDie().records.size(), 2u);
  EXPECT_EQ(replay.ValueOrDie().records[0].terms, (DocTerms{{1, 1}}));
  EXPECT_EQ(replay.ValueOrDie().records[1].terms, (DocTerms{{3, 3}}));
}

TEST(WalTest, SyncIfPendingBatchesFsyncs) {
  const std::string path = FreshDir("batch") + "/wal_000001.log";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  auto& w = *writer.ValueOrDie();
  ASSERT_TRUE(w.AppendAdd({{1, 1}}).ok());
  EXPECT_EQ(w.pending_records(), 1u);
  ASSERT_TRUE(w.SyncIfPending(3).ok());  // below threshold: no sync
  EXPECT_EQ(w.pending_records(), 1u);
  ASSERT_TRUE(w.AppendAdd({{2, 1}}).ok());
  ASSERT_TRUE(w.AppendAdd({{3, 1}}).ok());
  ASSERT_TRUE(w.SyncIfPending(3).ok());  // threshold reached: syncs
  EXPECT_EQ(w.pending_records(), 0u);
}

// ------------------------------------------------------- catalog recovery

IndexCatalog::Options InDir(const std::string& dir) {
  IndexCatalog::Options options;
  options.num_terms = kVocab;
  options.dir = dir;
  return options;
}

std::vector<Posting> Scan(const CatalogState& state, TermId t) {
  std::vector<Posting> out;
  for (auto c = state.OpenMergedCursor(t, 0.0); !c->at_end(); c->next()) {
    out.push_back(Posting{c->doc(), c->tf()});
  }
  return out;
}

TEST(WalRecoveryTest, AcknowledgedWritesSurviveWithoutFlush) {
  const std::string dir = FreshDir("no_flush");
  {
    auto catalog = IndexCatalog::Create(InDir(dir));
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
    auto& c = *catalog.ValueOrDie();
    ASSERT_TRUE(c.AddDocuments({{{1, 2}}, {{2, 3}}, {{1, 1}, {2, 1}}}).ok());
    ASSERT_TRUE(c.DeleteDocument(1).ok());
    ASSERT_TRUE(c.UpdateDocument(0, {{3, 9}}).ok());  // id 3
    // No Flush: the memtable is durable through the WAL alone.
  }
  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto state = reopened.ValueOrDie()->Snapshot();
  EXPECT_EQ(state->doc_space(), 4u);
  EXPECT_EQ(state->stats().num_live_docs, 2u);
  EXPECT_TRUE(state->IsDeleted(0));
  EXPECT_TRUE(state->IsDeleted(1));
  EXPECT_EQ(Scan(*state, 1), (std::vector<Posting>{{2, 1}}));
  EXPECT_EQ(Scan(*state, 3), (std::vector<Posting>{{3, 9}}));
}

TEST(WalRecoveryTest, TornTailDropsOnlyUnacknowledgedSuffix) {
  const std::string dir = FreshDir("torn_tail");
  uint64_t acked_bytes = 0;
  {
    auto catalog = IndexCatalog::Create(InDir(dir));
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.ValueOrDie()->AddDocument({{1, 1}}).ok());
    ASSERT_TRUE(catalog.ValueOrDie()->AddDocument({{2, 2}}).ok());
    acked_bytes = FileSize(dir + "/" + WalFileName(1));
  }
  // Simulate a crash mid-append of a third record: garbage tail (a
  // plausible size field, then the crash — no CRC, no payload).
  {
    std::ofstream out(dir + "/" + WalFileName(1),
                      std::ios::binary | std::ios::app);
    const char torn[] = {0x13, 0x00, 0x00, 0x00, 'g', 'a', 'r'};
    out.write(torn, sizeof(torn));
  }
  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto state = reopened.ValueOrDie()->Snapshot();
  EXPECT_EQ(state->doc_space(), 2u);
  EXPECT_EQ(state->stats().num_live_docs, 2u);
  EXPECT_EQ(FileSize(dir + "/" + WalFileName(1)), acked_bytes);

  // The truncated log accepts appends again.
  ASSERT_TRUE(reopened.ValueOrDie()->AddDocument({{3, 3}}).ok());
  auto reopened2 = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened2.ok());
  EXPECT_EQ(reopened2.ValueOrDie()->Snapshot()->doc_space(), 3u);
}

TEST(WalRecoveryTest, FlushRotatesAndBoundsReplay) {
  const std::string dir = FreshDir("rotate");
  auto catalog = IndexCatalog::Create(InDir(dir));
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();
  ASSERT_TRUE(c.AddDocuments({{{1, 1}}, {{2, 2}}}).ok());
  ASSERT_TRUE(c.Flush().ok());
  // Rotation: seq 1 is gone, seq 2 is live and seeded with the (empty)
  // post-flush memtable.
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + WalFileName(1)));
  ASSERT_TRUE(std::filesystem::exists(dir + "/" + WalFileName(2)));
  auto manifest = ReadManifest(dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.ValueOrDie().wal_seq, 2u);

  ASSERT_TRUE(c.AddDocument({{3, 3}}).ok());  // id 2, into seq-2 WAL
  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto state = reopened.ValueOrDie()->Snapshot();
  EXPECT_EQ(state->segments().size(), 1u);
  EXPECT_EQ(state->doc_space(), 3u);
  EXPECT_EQ(Scan(*state, 3), (std::vector<Posting>{{2, 3}}));
}

TEST(WalRecoveryTest, RotationSeedCarriesMemtableTombstones) {
  const std::string dir = FreshDir("seed_tombstones");
  auto catalog = IndexCatalog::Create(InDir(dir));
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();
  // A flush while a *later* memtable doc is tombstoned: the rotation seed
  // after a merge must reproduce both the docs and their tombstones.
  ASSERT_TRUE(c.AddDocuments({{{1, 1}}, {{2, 2}}}).ok());
  ASSERT_TRUE(c.Flush().ok());
  ASSERT_TRUE(c.AddDocuments({{{3, 3}}, {{4, 4}}}).ok());  // ids 2, 3
  ASSERT_TRUE(c.DeleteDocument(3).ok());
  // Merge rotates the WAL; the new log must seed memtable docs 2,3 and
  // doc 3's tombstone — replay alone rebuilds the exact state.
  auto merged = c.Merge();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto state = reopened.ValueOrDie()->Snapshot();
  EXPECT_EQ(state->doc_space(), 4u);
  EXPECT_EQ(state->stats().num_live_docs, 3u);
  EXPECT_TRUE(state->IsDeleted(3));
  EXPECT_EQ(Scan(*state, 3), (std::vector<Posting>{{2, 3}}));
  EXPECT_TRUE(Scan(*state, 4).empty());
}

TEST(WalRecoveryTest, PreWalCatalogUpgradesOnOpen) {
  const std::string dir = FreshDir("upgrade");
  {
    IndexCatalog::Options options = InDir(dir);
    options.wal_enabled = false;
    auto catalog = IndexCatalog::Create(options);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.ValueOrDie()->AddDocument({{1, 1}}).ok());
    ASSERT_TRUE(catalog.ValueOrDie()->Flush().ok());
    // No WAL file anywhere; the manifest says wal_seq 0.
    auto manifest = ReadManifest(dir);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest.ValueOrDie().wal_seq, 0u);
  }
  // Reopen with the WAL on: the catalog upgrades in place...
  {
    auto reopened = IndexCatalog::Open(InDir(dir));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ASSERT_TRUE(reopened.ValueOrDie()->AddDocument({{2, 2}}).ok());
  }
  // ...and the unflushed document survives the next crash.
  auto again = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.ValueOrDie()->Snapshot()->doc_space(), 2u);
  EXPECT_EQ(Scan(*again.ValueOrDie()->Snapshot(), 2),
            (std::vector<Posting>{{1, 2}}));
}

TEST(WalRecoveryTest, WalBackedCatalogStaysWalBackedWhenDisabled) {
  const std::string dir = FreshDir("sticky");
  {
    auto catalog = IndexCatalog::Create(InDir(dir));
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog.ValueOrDie()->AddDocument({{1, 1}}).ok());
  }
  // Reopen with wal_enabled = false: the manifest names a WAL, so the
  // catalog must keep it (dropping the log would orphan the acknowledged
  // write) — and further writes stay durable.
  {
    IndexCatalog::Options options = InDir(dir);
    options.wal_enabled = false;
    auto reopened = IndexCatalog::Open(options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened.ValueOrDie()->Snapshot()->doc_space(), 1u);
    ASSERT_TRUE(reopened.ValueOrDie()->AddDocument({{2, 2}}).ok());
  }
  auto again = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.ValueOrDie()->Snapshot()->doc_space(), 2u);
}

TEST(WalRecoveryTest, GroupCommitConcurrentWritersAllDurable) {
  const std::string dir = FreshDir("group");
  auto catalog = IndexCatalog::Create(InDir(dir));
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();

  constexpr int kThreads = 8;
  constexpr int kDocsPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < kDocsPerThread; ++i) {
        const TermId term = static_cast<TermId>(1 + (t * 7 + i) % (kVocab - 1));
        ASSERT_TRUE(c.AddDocument({{term, 1u + static_cast<uint32_t>(i)}})
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  const uint64_t space = c.Snapshot()->doc_space();
  EXPECT_EQ(space, static_cast<uint64_t>(kThreads * kDocsPerThread));

  // Every acknowledged concurrent write replays.
  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto state = reopened.ValueOrDie()->Snapshot();
  EXPECT_EQ(state->doc_space(), space);
  EXPECT_EQ(state->stats().num_live_docs, space);
}

TEST(WalRecoveryTest, EmptyBatchAndBadDocsRejectedAtomically) {
  const std::string dir = FreshDir("validate");
  auto catalog = IndexCatalog::Create(InDir(dir));
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();
  EXPECT_FALSE(c.AddDocuments({}).ok());
  // One bad document rejects the whole batch — nothing is applied, no
  // WAL record is written.
  EXPECT_FALSE(c.AddDocuments({{{1, 1}}, {{kVocab, 1}}}).ok());
  EXPECT_FALSE(c.AddDocuments({{{1, 1}}, {{2, 0}}}).ok());
  EXPECT_FALSE(c.AddDocuments({{{1, 1}}, {{2, 1}, {2, 2}}}).ok());
  EXPECT_EQ(c.Snapshot()->doc_space(), 0u);
  // An update whose replacement is invalid leaves the old doc alone.
  ASSERT_TRUE(c.AddDocument({{1, 1}}).ok());
  EXPECT_FALSE(c.UpdateDocument(0, {{kVocab, 1}}).ok());
  EXPECT_FALSE(c.Snapshot()->IsDeleted(0));

  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.ValueOrDie()->Snapshot()->doc_space(), 1u);
  EXPECT_EQ(reopened.ValueOrDie()->Snapshot()->stats().num_live_docs, 1u);
}

TEST(WalRecoveryTest, CrashAfterRotationBeforeUnlinkIsHarmless) {
  const std::string dir = FreshDir("rotated_unlinked");
  auto fail_point = std::make_shared<std::string>();
  IndexCatalog::Options options = InDir(dir);
  options.fault_injector = [fail_point](const std::string& point) {
    if (point == *fail_point) {
      return Status::Internal("injected crash at " + point);
    }
    return Status::OK();
  };
  auto catalog = IndexCatalog::Create(options);
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();
  ASSERT_TRUE(c.AddDocuments({{{1, 1}}, {{2, 2}}}).ok());

  // Crash after the new WAL + manifest are durable but before the old
  // WAL is unlinked: both files exist; recovery follows the manifest and
  // ignores the orphan.
  *fail_point = "flush:wal-rotated";
  EXPECT_FALSE(c.Flush().ok());
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + WalFileName(1)));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + WalFileName(2)));

  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto state = reopened.ValueOrDie()->Snapshot();
  // The manifest published by the rotation names the flushed segment and
  // the empty seq-2 WAL: both documents live in the segment.
  EXPECT_EQ(state->segments().size(), 1u);
  EXPECT_EQ(state->doc_space(), 2u);
  EXPECT_EQ(state->stats().num_live_docs, 2u);
}

}  // namespace
}  // namespace moa
