#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace moa {
namespace {

TEST(ZipfSamplerTest, SamplesWithinRange) {
  Rng rng(1);
  ZipfSampler zipf(1000, 1.0);
  for (int i = 0; i < 10000; ++i) {
    uint64_t r = zipf.Sample(&rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 1000u);
  }
}

TEST(ZipfSamplerTest, SingleItemAlwaysRankOne) {
  Rng rng(2);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 1u);
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchTheory) {
  Rng rng(3);
  const uint64_t n = 100;
  const double s = 1.0;
  ZipfSampler zipf(n, s);
  ZipfAnalytics analytics(n, s);
  std::vector<int> counts(n + 1, 0);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Sample(&rng)];
  // Check ranks 1, 2, 10 against analytic probabilities (3-sigma-ish).
  for (uint64_t r : {1ull, 2ull, 10ull}) {
    const double expected = analytics.Probability(r);
    const double observed = static_cast<double>(counts[r]) / trials;
    EXPECT_NEAR(observed, expected, 4.0 * std::sqrt(expected / trials) + 1e-3)
        << "rank " << r;
  }
}

TEST(ZipfSamplerTest, ZeroSkewIsUniform) {
  Rng rng(4);
  ZipfSampler zipf(50, 0.0);
  std::vector<int> counts(51, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Sample(&rng)];
  for (uint64_t r = 1; r <= 50; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(trials), 0.02, 0.005)
        << "rank " << r;
  }
}

TEST(ZipfAnalyticsTest, PartialHarmonicMonotone) {
  ZipfAnalytics a(10000, 1.0);
  double prev = 0.0;
  for (uint64_t k : {1ull, 10ull, 100ull, 1000ull, 10000ull}) {
    double h = a.PartialHarmonic(k);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(ZipfAnalyticsTest, PartialHarmonicMatchesBruteForce) {
  const uint64_t n = 20000;
  const double s = 1.0;
  ZipfAnalytics a(n, s);
  double exact = 0.0;
  for (uint64_t r = 1; r <= n; ++r) exact += std::pow(r, -s);
  EXPECT_NEAR(a.PartialHarmonic(n), exact, exact * 1e-4);
}

TEST(ZipfAnalyticsTest, VolumeFractionBounds) {
  ZipfAnalytics a(5000, 1.1);
  EXPECT_NEAR(a.VolumeFraction(5000), 1.0, 1e-9);
  EXPECT_GT(a.VolumeFraction(1), 0.0);
  EXPECT_LT(a.VolumeFraction(1), 1.0);
}

TEST(ZipfAnalyticsTest, RanksForVolumeInvertsVolumeFraction) {
  ZipfAnalytics a(5000, 1.0);
  for (double f : {0.25, 0.5, 0.9, 0.95}) {
    uint64_t k = a.RanksForVolume(f);
    EXPECT_GE(a.VolumeFraction(k), f);
    if (k > 1) EXPECT_LT(a.VolumeFraction(k - 1), f);
  }
}

TEST(ZipfAnalyticsTest, HeadHoldsMostVolume) {
  // The defining Zipf property the paper exploits: a tiny head of ranks
  // carries a hugely disproportionate share of the token volume. At s=1,
  // 1% of the ranks carry over half the mass (H_500/H_50000 ~ 0.57).
  ZipfAnalytics a(50000, 1.0);
  EXPECT_GT(a.VolumeFraction(500), 0.5);
  // Conversely, the rare 50% of ranks (the "interesting" tail) carry only
  // a small volume share — the fragmentation opportunity.
  EXPECT_LT(1.0 - a.VolumeFraction(25000), 0.10);
}

TEST(ZipfAnalyticsTest, ProbabilitiesSumToOne) {
  ZipfAnalytics a(300, 0.8);
  double sum = 0.0;
  for (uint64_t r = 1; r <= 300; ++r) sum += a.Probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace moa
