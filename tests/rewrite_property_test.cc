// Property suite: optimizer soundness on *randomly generated* expression
// trees. For hundreds of seeded random expressions the full rule pipeline
// must (a) terminate, (b) never grow the tree unboundedly, and (c) preserve
// value semantics — bag equality always, list equality whenever the formal
// result type is ordered.
#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "common/rng.h"
#include "optimizer/interobject_rules.h"
#include "optimizer/intra_object.h"

namespace moa {
namespace {

/// Random expression generator over the LIST/BAG/SET fragment that the
/// rewrite rules target. Returns the expression and its result kind.
class ExprGen {
 public:
  explicit ExprGen(uint64_t seed) : rng_(seed) {}

  std::pair<ExprPtr, ValueKind> Gen(int depth) {
    if (depth <= 0) return Leaf();
    switch (rng_.Uniform(10)) {
      case 0: return Leaf();
      case 1: {  // select over whatever collection comes back
        auto [e, k] = Gen(depth - 1);
        const double lo = static_cast<double>(rng_.UniformRange(-5, 10));
        const double hi = lo + static_cast<double>(rng_.Uniform(12));
        const char* op = k == ValueKind::kList   ? "LIST.select"
                         : k == ValueKind::kBag ? "BAG.select"
                                                : "SET.select";
        return {Expr::Apply(op, {e, Expr::Const(Value::Double(lo)),
                                 Expr::Const(Value::Double(hi))}),
                k};
      }
      case 2: {  // sort (lists only; otherwise recurse)
        auto [e, k] = Gen(depth - 1);
        if (k != ValueKind::kList) return {e, k};
        return {Expr::Apply("LIST.sort", {e}), ValueKind::kList};
      }
      case 3: {  // cast list->bag
        auto [e, k] = Gen(depth - 1);
        if (k != ValueKind::kList) return {e, k};
        return {Expr::Apply("LIST.projecttobag", {e}), ValueKind::kBag};
      }
      case 4: {  // cast bag->list
        auto [e, k] = Gen(depth - 1);
        if (k != ValueKind::kBag) return {e, k};
        return {Expr::Apply("BAG.projecttolist", {e}), ValueKind::kList};
      }
      case 5: {  // topn
        auto [e, k] = Gen(depth - 1);
        if (k == ValueKind::kSet) return {e, k};
        const char* op =
            k == ValueKind::kList ? "LIST.topn" : "BAG.topn";
        return {Expr::Apply(
                    op, {e, Expr::Const(Value::Int(
                                static_cast<int64_t>(rng_.Uniform(6))))}),
                ValueKind::kList};
      }
      case 6: {  // set.make
        auto [e, k] = Gen(depth - 1);
        (void)k;
        return {Expr::Apply("SET.make", {e}), ValueKind::kSet};
      }
      case 7: {  // reverse (lists)
        auto [e, k] = Gen(depth - 1);
        if (k != ValueKind::kList) return {e, k};
        return {Expr::Apply("LIST.reverse", {e}), ValueKind::kList};
      }
      case 8: {  // slice (lists)
        auto [e, k] = Gen(depth - 1);
        if (k != ValueKind::kList) return {e, k};
        return {Expr::Apply("LIST.slice",
                            {e,
                             Expr::Const(Value::Int(
                                 static_cast<int64_t>(rng_.Uniform(4)))),
                             Expr::Const(Value::Int(
                                 static_cast<int64_t>(rng_.Uniform(8))))}),
                ValueKind::kList};
      }
      default:
        return Gen(depth - 1);
    }
  }

 private:
  std::pair<ExprPtr, ValueKind> Leaf() {
    ValueVec v;
    const size_t n = rng_.Uniform(12);
    const bool sorted = rng_.NextBool(0.5);
    int64_t x = rng_.UniformRange(-5, 5);
    for (size_t i = 0; i < n; ++i) {
      v.push_back(Value::Int(x));
      x = sorted ? x + static_cast<int64_t>(rng_.Uniform(3))
                 : rng_.UniformRange(-5, 10);
    }
    return {Expr::Const(Value::List(std::move(v))), ValueKind::kList};
  }

  Rng rng_;
};

class RewritePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewritePropertyTest, FullPipelinePreservesSemantics) {
  ExprGen gen(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    auto [expr, kind] = gen.Gen(5);
    RewriteTrace trace;
    ExprPtr rewritten = RewriteToFixpoint(expr, FullRuleSet(),
                                          ExtensionRegistry::Default(),
                                          &trace);
    ASSERT_LE(rewritten->TreeSize(), expr->TreeSize())
        << "rules must not grow trees: " << expr->ToString();
    auto before = Evaluate(expr);
    auto after = Evaluate(rewritten);
    ASSERT_EQ(before.ok(), after.ok()) << expr->ToString();
    if (!before.ok()) continue;
    // Bag semantics always; list semantics when the type is ordered.
    EXPECT_TRUE(Value::BagEquals(before.ValueOrDie(), after.ValueOrDie()))
        << expr->ToString() << "\n-> " << rewritten->ToString();
    if (kind == ValueKind::kList || kind == ValueKind::kSet) {
      EXPECT_EQ(before.ValueOrDie(), after.ValueOrDie())
          << expr->ToString() << "\n-> " << rewritten->ToString();
    }
  }
}

TEST_P(RewritePropertyTest, IntraObjectIsAlsoSound) {
  ExprGen gen(GetParam() ^ 0xABCDEF);
  for (int trial = 0; trial < 40; ++trial) {
    auto [expr, kind] = gen.Gen(5);
    (void)kind;
    ExprPtr rewritten =
        IntraObjectOnlyOptimize(expr, ExtensionRegistry::Default());
    auto before = Evaluate(expr);
    auto after = Evaluate(rewritten);
    ASSERT_EQ(before.ok(), after.ok());
    if (!before.ok()) continue;
    EXPECT_TRUE(Value::BagEquals(before.ValueOrDie(), after.ValueOrDie()))
        << expr->ToString();
  }
}

TEST_P(RewritePropertyTest, RewriteIsIdempotent) {
  ExprGen gen(GetParam() ^ 0x5EED);
  for (int trial = 0; trial < 40; ++trial) {
    auto [expr, kind] = gen.Gen(4);
    (void)kind;
    ExprPtr once = RewriteToFixpoint(expr, FullRuleSet(),
                                     ExtensionRegistry::Default());
    ExprPtr twice = RewriteToFixpoint(once, FullRuleSet(),
                                      ExtensionRegistry::Default());
    EXPECT_TRUE(Expr::Equal(once, twice)) << expr->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace moa
