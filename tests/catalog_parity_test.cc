// Acceptance suite for the index lifecycle: top-N retrieval over a
// catalog built *incrementally* (adds, deletes, flushes, merges) must be
// bit-identical to retrieval over a fresh single in-memory index of the
// surviving documents — sequentially and under SearchBatch concurrency.
//
// Doc-id mapping: catalog ids are dense over *slots* (tombstoned docs keep
// their slot until a merge compacts them), so the comparison maps the
// reference's dense id k to the catalog id of the k-th survivor. The test
// replays the documented id rules independently and cross-checks the
// resulting mapping against the catalog (LiveDocIds, per-doc lengths,
// df/cf statistics) before trusting it. A second database runs the same
// lifecycle plus a final flush+merge, after which the id spaces coincide
// and results must match with *no* mapping at all.
//
// Since the fragment/Fagin/probabilistic families moved onto the
// PostingSource API, *every* registered strategy serves the catalog: the
// parity sweep below runs AllStrategies() (fragment strategies against a
// live-statistics fragmentation that must equal the fresh index's). Also
// here: tombstone visibility through every lifecycle stage, Explain's
// storage line, and the concurrency tests (mutations / attach / detach
// racing SearchBatch — the TSan targets).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "exec/registry.h"
#include "ir/query_gen.h"

namespace moa {
namespace {

constexpr uint32_t kSeedDocs = 300;
constexpr uint32_t kVocab = 700;

DatabaseConfig BaseConfig(const std::string& catalog_dir) {
  DatabaseConfig config;
  config.collection.num_docs = kSeedDocs;
  config.collection.vocabulary = kVocab;
  config.collection.mean_doc_length = 60;
  config.collection.seed = 991133;
  config.fragmentation.small_volume_fraction = 0.05;
  config.catalog_dir = catalog_dir;
  return config;
}

/// Transposes an inverted file into per-document compositions.
std::vector<DocTerms> Transpose(const InvertedFile& file) {
  std::vector<DocTerms> docs(file.num_docs());
  for (TermId t = 0; t < file.num_terms(); ++t) {
    const PostingList& list = file.list(t);
    for (size_t i = 0; i < list.size(); ++i) {
      docs[list[i].doc].emplace_back(t, list[i].tf);
    }
  }
  return docs;
}

/// Deterministic synthetic document (8..19 distinct terms).
DocTerms SynthDoc(Rng& rng) {
  std::map<TermId, uint32_t> terms;
  const size_t want = 8 + rng.Uniform(12);
  while (terms.size() < want) {
    const TermId t = static_cast<TermId>(rng.Uniform(kVocab));
    const uint32_t tf = 1 + static_cast<uint32_t>(rng.Uniform(4));
    terms.emplace(t, tf);
  }
  return DocTerms(terms.begin(), terms.end());
}

/// Test-side replay of the documented doc-id rules: slots are dense in
/// insertion order, deletes tombstone in place, flush is id-stable, a
/// full merge drops dead *flushed* slots and compacts.
struct IdSpaceReplay {
  struct Slot {
    size_t original;  ///< index into the all-documents list
    bool alive = true;
  };
  std::vector<Slot> slots;
  size_t flushed = 0;  ///< slots currently living in segments

  void Add(size_t original) { slots.push_back(Slot{original, true}); }
  void Delete(DocId id) { slots[id].alive = false; }
  void Flush() { flushed = slots.size(); }
  void MergeAll() {
    std::vector<Slot> next;
    for (size_t i = 0; i < flushed; ++i) {
      if (slots[i].alive) next.push_back(slots[i]);
    }
    const size_t kept = next.size();
    next.insert(next.end(), slots.begin() + static_cast<ptrdiff_t>(flushed),
                slots.end());
    slots = std::move(next);
    flushed = kept;
  }

  /// Survivors in id order: (catalog id, original doc index).
  std::vector<std::pair<DocId, size_t>> Survivors() const {
    std::vector<std::pair<DocId, size_t>> out;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].alive) out.emplace_back(static_cast<DocId>(i),
                                           slots[i].original);
    }
    return out;
  }
};

/// Fresh single in-memory index of one document list (the reference).
/// Carries fragmentation + a sparse cache so the fragment strategies run
/// against it too.
struct Reference {
  std::unique_ptr<InvertedFile> file;
  std::unique_ptr<ScoringModel> model;
  Fragmentation fragmentation;
  std::unique_ptr<SparseIndexCache> sparse_cache =
      std::make_unique<SparseIndexCache>();

  ExecContext context() const {
    ExecContext ctx;
    ctx.file = file.get();
    ctx.model = model.get();
    ctx.fragmentation = &fragmentation;
    ctx.sparse_cache = sparse_cache.get();
    return ctx;
  }
};

Reference BuildReference(const std::vector<DocTerms>& docs) {
  Reference ref;
  InvertedFileBuilder builder(kVocab);
  for (DocId d = 0; d < docs.size(); ++d) {
    EXPECT_TRUE(builder.AddDocument(d, docs[d]).ok());
  }
  ref.file = std::make_unique<InvertedFile>(builder.Build());
  ref.model = MakeBm25(ref.file.get());
  ref.file->BuildImpactOrders(
      [&](TermId t, const Posting& p) { return ref.model->Weight(t, p); });
  ref.fragmentation =
      Fragmentation::Build(*ref.file, BaseConfig("").fragmentation);
  return ref;
}

/// One lifecycle instance: the database, the replayed id space, and the
/// list of every document ever added (seed collection + synthetic).
struct Lifecycle {
  std::unique_ptr<MmDatabase> db;
  std::vector<DocTerms> all_docs;
  IdSpaceReplay ids;

  void Add(const DocTerms& doc) {
    all_docs.push_back(doc);
    auto id = db->AddDocument(doc);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_EQ(id.ValueOrDie(), ids.slots.size());
    ids.Add(all_docs.size() - 1);
  }
  void Delete(DocId id) {
    ASSERT_TRUE(db->DeleteDocument(id).ok());
    ids.Delete(id);
  }
  void Flush() {
    ASSERT_TRUE(db->Flush().ok());
    ids.Flush();
  }
  void MergeAll() {
    auto merged = db->Merge();
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ids.MergeAll();
  }
};

/// Runs the shared lifecycle script: deletes in the memtable, two
/// flushes, deletes in segments and memtable, one merge, then a trailing
/// unflushed batch with one more delete on each side of the merge point.
void RunScript(Lifecycle& lc) {
  Rng rng(771122);
  lc.Delete(3);
  lc.Delete(57);
  lc.Delete(123);
  lc.Flush();  // segment 1: the seeded collection, 3 tombstones
  for (int i = 0; i < 80; ++i) lc.Add(SynthDoc(rng));
  lc.Delete(10);   // segment-1 doc
  lc.Delete(330);  // memtable doc
  lc.Flush();      // segment 2
  for (int i = 0; i < 40; ++i) lc.Add(SynthDoc(rng));
  lc.Delete(381);  // memtable doc
  lc.Delete(310);  // segment-2 doc
  lc.MergeAll();   // drops 3,57,123,10 + 330,310; compacts ids
  for (int i = 0; i < 10; ++i) lc.Add(SynthDoc(rng));
  lc.Delete(5);    // merged-segment doc (post-compaction id)
  lc.Delete(static_cast<DocId>(lc.ids.slots.size() - 2));  // memtable doc
}

class CatalogParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Mixed-state database: merged segment + memtable, tombstones in both.
    mixed_ = new Lifecycle();
    BuildOne(*mixed_, "mixed", /*compact=*/false);
    // Compact database: same script + final flush and merge — the id
    // space collapses onto the reference's dense ids.
    compact_ = new Lifecycle();
    BuildOne(*compact_, "compact", /*compact=*/true);

    QueryWorkloadConfig qconfig;
    qconfig.num_queries = 16;
    qconfig.terms_per_query = 4;
    qconfig.distribution = QueryTermDistribution::kMixed;
    qconfig.seed = 5150;
    queries_ = new std::vector<Query>(
        GenerateQueries(mixed_->db->collection(), qconfig).ValueOrDie());

    // The reference index holds exactly the surviving documents, in
    // insertion order (both lifecycles share the script, so they agree).
    std::vector<DocTerms> survivors;
    for (const auto& [id, original] : mixed_->ids.Survivors()) {
      survivors.push_back(mixed_->all_docs[original]);
    }
    reference_ = new Reference(BuildReference(survivors));
  }

  static void BuildOne(Lifecycle& lc, const char* tag, bool compact) {
    const std::string dir = std::string(::testing::TempDir()) +
                            "/catalog_parity_" + tag;
    std::filesystem::remove_all(dir);
    auto db = MmDatabase::Open(BaseConfig(dir));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    lc.db = std::move(db).ValueOrDie();
    lc.all_docs = Transpose(lc.db->file());
    for (size_t i = 0; i < lc.all_docs.size(); ++i) lc.ids.Add(i);
    RunScript(lc);
    if (compact) {
      lc.Flush();
      lc.MergeAll();
    }
    ASSERT_TRUE(lc.db->is_dynamic());
  }

  /// Catalog id of the reference's dense id k, from the replay.
  static std::vector<DocId> Mapping(const Lifecycle& lc) {
    std::vector<DocId> map;
    for (const auto& [id, original] : lc.ids.Survivors()) map.push_back(id);
    return map;
  }

  static Lifecycle* mixed_;
  static Lifecycle* compact_;
  static Reference* reference_;
  static std::vector<Query>* queries_;
};

Lifecycle* CatalogParityTest::mixed_ = nullptr;
Lifecycle* CatalogParityTest::compact_ = nullptr;
Reference* CatalogParityTest::reference_ = nullptr;
std::vector<Query>* CatalogParityTest::queries_ = nullptr;

TEST_F(CatalogParityTest, ReplayedMappingAgreesWithCatalog) {
  for (Lifecycle* lc : {mixed_, compact_}) {
    const std::vector<DocId> map = Mapping(*lc);
    const auto state = lc->db->catalog()->Snapshot();
    // The catalog's own survivor enumeration, lengths and statistics must
    // agree with the independently replayed mapping and the reference.
    ASSERT_EQ(state->LiveDocIds(), map);
    ASSERT_EQ(state->stats().num_live_docs, reference_->file->num_docs());
    ASSERT_EQ(state->stats().total_live_tokens,
              reference_->file->total_tokens());
    for (size_t k = 0; k < map.size(); ++k) {
      ASSERT_EQ(state->DocLength(map[k]),
                reference_->file->DocLength(static_cast<DocId>(k)));
    }
    for (TermId t = 0; t < kVocab; ++t) {
      ASSERT_EQ(state->stats().df[t], reference_->file->DocFrequency(t));
    }
  }
  // The compact lifecycle's id space coincides with the reference's.
  const std::vector<DocId> compact_map = Mapping(*compact_);
  for (size_t k = 0; k < compact_map.size(); ++k) {
    ASSERT_EQ(compact_map[k], static_cast<DocId>(k));
  }
}

void ExpectMappedParity(const TopNResult& expected, const TopNResult& actual,
                        const std::vector<DocId>& map, const char* label) {
  ASSERT_EQ(expected.items.size(), actual.items.size()) << label;
  for (size_t i = 0; i < expected.items.size(); ++i) {
    EXPECT_EQ(map[expected.items[i].doc], actual.items[i].doc)
        << label << " rank " << i;
    // Bit-identical, not approximately equal: identical float ops in
    // identical order on both storage spines.
    EXPECT_EQ(expected.items[i].score, actual.items[i].score)
        << label << " rank " << i;
  }
}

TEST_F(CatalogParityTest, EveryStrategyMatchesFreshIndexBitForBit) {
  const ExecContext ref_ctx = reference_->context();
  const std::vector<DocId> mixed_map = Mapping(*mixed_);
  for (PhysicalStrategy s : AllStrategies()) {
    for (const Query& q : *queries_) {
      auto expected = StrategyRegistry::Global().Execute(s, ref_ctx, q, 10,
                                                         ExecOptions{});
      ASSERT_TRUE(expected.ok()) << StrategyName(s);
      auto over_mixed = mixed_->db->Execute(s, q, 10);
      ASSERT_TRUE(over_mixed.ok())
          << StrategyName(s) << ": " << over_mixed.status().ToString();
      ExpectMappedParity(expected.ValueOrDie(), over_mixed.ValueOrDie(),
                         mixed_map, StrategyName(s));

      // Compact catalog: ids coincide — compare without any mapping.
      auto over_compact = compact_->db->Execute(s, q, 10);
      ASSERT_TRUE(over_compact.ok()) << StrategyName(s);
      ASSERT_EQ(expected.ValueOrDie().items.size(),
                over_compact.ValueOrDie().items.size());
      for (size_t i = 0; i < expected.ValueOrDie().items.size(); ++i) {
        EXPECT_EQ(expected.ValueOrDie().items[i],
                  over_compact.ValueOrDie().items[i])
            << StrategyName(s) << " rank " << i;
      }
    }
  }
}

TEST_F(CatalogParityTest, DynamicSearchAcceptsEveryRegisteredStrategy) {
  // The strategy×storage matrix has no Unimplemented cells left: forcing
  // any registered strategy through the dynamic Search path must execute
  // (and agree with the direct registry execution over the same
  // snapshot).
  for (PhysicalStrategy s : AllStrategies()) {
    SearchOptions opts;
    opts.n = 10;
    opts.safe_only = false;
    opts.force = s;
    auto r = mixed_->db->Search((*queries_)[0], opts);
    ASSERT_TRUE(r.ok()) << StrategyName(s) << ": " << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie().strategy, s);
    auto direct = mixed_->db->Execute(s, (*queries_)[0], 10);
    ASSERT_TRUE(direct.ok()) << StrategyName(s);
    ASSERT_EQ(r.ValueOrDie().top.items.size(),
              direct.ValueOrDie().items.size());
    for (size_t i = 0; i < direct.ValueOrDie().items.size(); ++i) {
      EXPECT_EQ(r.ValueOrDie().top.items[i], direct.ValueOrDie().items[i])
          << StrategyName(s) << " rank " << i;
    }
  }
}

TEST_F(CatalogParityTest, SearchBatchOverCatalogMatchesSequential) {
  const std::vector<DocId> map = Mapping(*mixed_);
  const ExecContext ref_ctx = reference_->context();
  for (PhysicalStrategy s : AllStrategies()) {
    SearchOptions opts;
    opts.n = 10;
    opts.safe_only = false;
    opts.force = s;
    auto batch = mixed_->db->SearchBatch(*queries_, opts, 4);
    ASSERT_TRUE(batch.ok()) << StrategyName(s) << ": "
                            << batch.status().ToString();
    ASSERT_EQ(batch.ValueOrDie().results.size(), queries_->size());
    for (size_t i = 0; i < queries_->size(); ++i) {
      auto expected = StrategyRegistry::Global().Execute(
          s, ref_ctx, (*queries_)[i], 10, ExecOptions{});
      ASSERT_TRUE(expected.ok());
      ExpectMappedParity(expected.ValueOrDie(),
                         batch.ValueOrDie().results[i].top, map,
                         StrategyName(s));
    }
  }
}

TEST_F(CatalogParityTest, DefaultSearchAndGroundTruthServeTheCatalog) {
  const std::vector<DocId> map = Mapping(*mixed_);
  const ExecContext ref_ctx = reference_->context();
  for (const Query& q : *queries_) {
    // Unforced dynamic Search routes through the cost-based planner: a
    // safe strategy (default quality target 1.0), chosen per query from
    // the snapshot's live statistics — no hard-coded default.
    SearchOptions opts;
    opts.n = 10;
    auto r = mixed_->db->Search(q, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.ValueOrDie().planned);
    EXPECT_TRUE(IsSafeStrategy(r.ValueOrDie().strategy))
        << StrategyName(r.ValueOrDie().strategy);
    EXPECT_EQ(r.ValueOrDie().predicted_quality, 1.0);
    // Whatever the planner chose executes over the catalog bit-identical
    // to the same strategy over a fresh index of the survivors.
    auto expected = StrategyRegistry::Global().Execute(
        r.ValueOrDie().strategy, ref_ctx, q, 10, ExecOptions{});
    ASSERT_TRUE(expected.ok());
    ExpectMappedParity(expected.ValueOrDie(), r.ValueOrDie().top, map,
                       "default search");

    // Ground truth follows the live collection too.
    const std::vector<ScoredDoc> truth = mixed_->db->GroundTruth(q, 10);
    const std::vector<ScoredDoc> ref_truth =
        ExactTopN(*reference_->file, *reference_->model, q, 10);
    ASSERT_EQ(truth.size(), ref_truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(truth[i].doc, map[ref_truth[i].doc]);
      EXPECT_EQ(truth[i].score, ref_truth[i].score);
    }
  }
}

TEST_F(CatalogParityTest, TombstonesAreInvisibleThroughEveryStage) {
  // A probe document built from a term nobody else uses, tracked through
  // memtable -> segment -> merge.
  const std::string dir =
      std::string(::testing::TempDir()) + "/catalog_parity_tombstone";
  std::filesystem::remove_all(dir);
  auto opened = MmDatabase::Open(BaseConfig(dir));
  ASSERT_TRUE(opened.ok());
  MmDatabase& db = *opened.ValueOrDie();

  TermId unused = kVocab;
  for (TermId t = kVocab; t-- > 0;) {
    if (db.file().DocFrequency(t) == 0) {
      unused = t;
      break;
    }
  }
  ASSERT_LT(unused, kVocab) << "collection uses the whole vocabulary";
  const Query probe{{unused}};

  auto added = db.AddDocument({{unused, 3}, {0, 1}});
  ASSERT_TRUE(added.ok());
  const DocId id = added.ValueOrDie();
  auto hit = db.Execute(PhysicalStrategy::kHeap, probe, 5);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit.ValueOrDie().items.size(), 1u);
  EXPECT_EQ(hit.ValueOrDie().items[0].doc, id);

  // Memtable tombstone: gone immediately.
  ASSERT_TRUE(db.DeleteDocument(id).ok());
  EXPECT_TRUE(
      db.Execute(PhysicalStrategy::kHeap, probe, 5).ValueOrDie().items
          .empty());
  EXPECT_EQ(db.GroundTruthScores(probe)[id], 0.0);

  // Still gone after the tombstone rides a flush into a segment...
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_TRUE(
      db.Execute(PhysicalStrategy::kHeap, probe, 5).ValueOrDie().items
          .empty());
  // ...and after the merge physically drops it.
  ASSERT_TRUE(db.Merge().ok());
  EXPECT_TRUE(
      db.Execute(PhysicalStrategy::kHeap, probe, 5).ValueOrDie().items
          .empty());
  EXPECT_EQ(db.catalog()->Snapshot()->stats().df[unused], 0u);
}

TEST_F(CatalogParityTest, ExplainReportsStorageComposition) {
  SearchOptions opts;
  const auto text = mixed_->db->ExplainSearch((*queries_)[0], opts);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.ValueOrDie().find("storage: catalog"), std::string::npos)
      << text.ValueOrDie();
  EXPECT_NE(text.ValueOrDie().find("memtable("), std::string::npos);
  EXPECT_NE(text.ValueOrDie().find("seg "), std::string::npos);
  EXPECT_NE(text.ValueOrDie().find("merged cursor"), std::string::npos);

  // Static databases report their storage too.
  auto static_db = MmDatabase::Open(BaseConfig(""));
  ASSERT_TRUE(static_db.ok());
  const auto static_text =
      static_db.ValueOrDie()->ExplainSearch((*queries_)[0], opts);
  ASSERT_TRUE(static_text.ok());
  EXPECT_NE(static_text.ValueOrDie().find("storage: in-memory inverted file"),
            std::string::npos);
}

TEST_F(CatalogParityTest, ReopenedDatabaseRecoversDurableCatalog) {
  // A second process pointed at the same catalog_dir must recover the
  // durable state on its first mutation — not refuse the directory, and
  // not re-seed (which would duplicate every flushed document).
  const std::string dir =
      std::string(::testing::TempDir()) + "/catalog_parity_recover";
  std::filesystem::remove_all(dir);
  DatabaseConfig config = BaseConfig(dir);
  config.collection.num_docs = 50;
  uint64_t flushed_space = 0;
  {
    auto db = MmDatabase::Open(config);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.ValueOrDie()->AddDocument({{1, 2}}).ok());  // seeds 50+1
    ASSERT_TRUE(db.ValueOrDie()->DeleteDocument(7).ok());
    ASSERT_TRUE(db.ValueOrDie()->Flush().ok());
    flushed_space = db.ValueOrDie()->catalog()->Snapshot()->doc_space();
    ASSERT_EQ(flushed_space, 51u);
  }
  auto reopened = MmDatabase::Open(config);
  ASSERT_TRUE(reopened.ok());
  auto id = reopened.ValueOrDie()->AddDocument({{2, 3}});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(id.ValueOrDie(), flushed_space);  // continues the id space
  const auto state = reopened.ValueOrDie()->catalog()->Snapshot();
  EXPECT_EQ(state->stats().num_live_docs, 51u);  // 50 seeded - 1 + 2 added
  EXPECT_TRUE(state->IsDeleted(7));              // tombstone survived
}

TEST_F(CatalogParityTest, MutationsDuringSearchBatchAreSafe) {
  // Flush/merge/add/delete racing a 4-way SearchBatch: every query must
  // serve one consistent snapshot (TSan guards the memory model; the
  // assertions guard result sanity).
  const std::string dir =
      std::string(::testing::TempDir()) + "/catalog_parity_race";
  std::filesystem::remove_all(dir);
  DatabaseConfig config = BaseConfig(dir);
  config.collection.num_docs = 120;
  auto opened = MmDatabase::Open(config);
  ASSERT_TRUE(opened.ok());
  MmDatabase& db = *opened.ValueOrDie();
  ASSERT_TRUE(db.AddDocument({{1, 1}}).ok());  // flip to dynamic serving

  std::thread mutator([&db] {
    Rng rng(24680);
    for (int round = 0; round < 6; ++round) {
      std::vector<DocTerms> batch;
      for (int i = 0; i < 10; ++i) batch.push_back(SynthDoc(rng));
      auto first = db.AddDocuments(batch);
      ASSERT_TRUE(first.ok());
      ASSERT_TRUE(db.DeleteDocument(first.ValueOrDie()).ok());
      ASSERT_TRUE(db.Flush().ok());
      if (round % 2 == 1) {
        ASSERT_TRUE(db.Merge().ok());
      }
    }
  });

  SearchOptions opts;
  opts.n = 10;
  opts.safe_only = false;
  opts.force = PhysicalStrategy::kHeap;
  for (int round = 0; round < 8; ++round) {
    auto batch = db.SearchBatch(*queries_, opts, 4);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    for (const SearchResult& r : batch.ValueOrDie().results) {
      for (size_t i = 1; i < r.top.items.size(); ++i) {
        EXPECT_TRUE(
            ScoredDocLess(r.top.items[i - 1], r.top.items[i]) ||
            r.top.items[i - 1].score == r.top.items[i].score);
      }
    }
  }
  mutator.join();
}

TEST_F(CatalogParityTest, MutationsDuringShardedSearchBatchAreSafe) {
  // The sharded variant of the race above: adds/upserts/deletes/flushes/
  // merges across 3 shards racing a 4-way SearchBatch whose queries fan
  // out again through the shard coordinator. Every query must catch one
  // consistent ShardedSnapshot (TSan guards the memory model — including
  // the snapshot's lazily built per-shard bound caches; the assertions
  // guard result sanity).
  const std::string dir =
      std::string(::testing::TempDir()) + "/catalog_parity_sharded_race";
  std::filesystem::remove_all(dir);
  DatabaseConfig config = BaseConfig(dir);
  config.collection.num_docs = 120;
  config.num_shards = 3;
  auto opened = MmDatabase::Open(config);
  ASSERT_TRUE(opened.ok());
  MmDatabase& db = *opened.ValueOrDie();
  ASSERT_TRUE(db.AddDocument({{1, 1}}).ok());  // flip to dynamic serving

  std::thread mutator([&db] {
    Rng rng(13579);
    for (int round = 0; round < 6; ++round) {
      std::vector<DocTerms> batch;
      for (int i = 0; i < 9; ++i) batch.push_back(SynthDoc(rng));
      auto first = db.AddDocuments(batch);
      ASSERT_TRUE(first.ok());
      ASSERT_TRUE(db.DeleteDocument(first.ValueOrDie()).ok());
      auto single = db.AddDocument(SynthDoc(rng));
      ASSERT_TRUE(single.ok());
      auto updated = db.UpdateDocument(single.ValueOrDie(), SynthDoc(rng));
      ASSERT_TRUE(updated.ok()) << updated.status().ToString();
      ASSERT_TRUE(db.Flush().ok());
      if (round % 2 == 1) {
        ASSERT_TRUE(db.Merge().ok());
      }
    }
  });

  SearchOptions opts;
  opts.n = 10;
  opts.safe_only = false;
  opts.force = PhysicalStrategy::kMaxScore;
  for (int round = 0; round < 8; ++round) {
    auto batch = db.SearchBatch(*queries_, opts, 4);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    for (const SearchResult& r : batch.ValueOrDie().results) {
      for (size_t i = 1; i < r.top.items.size(); ++i) {
        EXPECT_TRUE(
            ScoredDocLess(r.top.items[i - 1], r.top.items[i]) ||
            r.top.items[i - 1].score == r.top.items[i].score);
      }
    }
  }
  mutator.join();
}

TEST_F(CatalogParityTest, AttachDetachDuringSearchBatchIsSafe) {
  // Static-mode snapshot safety (the former "NOT thread-safe" caveat):
  // attach/detach flips storage under a running SearchBatch; since the
  // segment holds the same collection, every result must stay
  // bit-identical to the in-memory answers regardless of which snapshot
  // each query caught.
  DatabaseConfig config = BaseConfig("");
  config.collection.num_docs = 150;
  auto opened = MmDatabase::Open(config);
  ASSERT_TRUE(opened.ok());
  MmDatabase& db = *opened.ValueOrDie();
  const std::string path =
      std::string(::testing::TempDir()) + "/attach_race.moaseg";
  ASSERT_TRUE(db.SaveSegment(path).ok());

  SearchOptions opts;
  opts.n = 10;
  opts.safe_only = false;
  opts.force = PhysicalStrategy::kMaxScore;
  std::vector<TopNResult> expected;
  for (const Query& q : *queries_) {
    expected.push_back(db.Execute(PhysicalStrategy::kMaxScore, q, 10)
                           .ValueOrDie());
  }

  std::thread flipper([&db, &path] {
    AttachSegmentOptions trusted;
    trusted.verify_payload = false;  // written and verified moments ago
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(db.AttachSegment(path, trusted).ok());
      db.DetachSegment();
    }
  });

  for (int round = 0; round < 8; ++round) {
    auto batch = db.SearchBatch(*queries_, opts, 4);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    for (size_t i = 0; i < queries_->size(); ++i) {
      const TopNResult& got = batch.ValueOrDie().results[i].top;
      ASSERT_EQ(got.items.size(), expected[i].items.size());
      for (size_t r = 0; r < got.items.size(); ++r) {
        EXPECT_EQ(got.items[r], expected[i].items[r]) << "query " << i;
      }
    }
  }
  flipper.join();
}

}  // namespace
}  // namespace moa
