#include "ir/exact_eval.h"

#include <gtest/gtest.h>

#include "common/cost_ticker.h"
#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;
using testutil::SmallModel;
using testutil::SmallQueries;

TEST(ExactEvalTest, AccumulateMatchesManualSum) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const ScoringModel& model = SmallModel();
  const Query& q = SmallQueries()[0];
  std::vector<double> acc = AccumulateScores(f, model, q);
  // Manually recompute for a handful of docs present in the first term.
  const PostingList& list = f.list(q.terms[0]);
  ASSERT_FALSE(list.empty());
  const DocId d = list[0].doc;
  double expected = 0.0;
  for (TermId t : q.terms) {
    auto tf = f.list(t).FindTf(d);
    if (tf.has_value()) expected += model.Weight(t, Posting{d, *tf});
  }
  EXPECT_NEAR(acc[d], expected, 1e-12);
}

TEST(ExactEvalTest, RankingIsSortedDescending) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  auto ranking = ExactRanking(f, SmallModel(), SmallQueries()[1]);
  for (size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_TRUE(!ScoredDocLess(ranking[i], ranking[i - 1]))
        << "position " << i;
  }
}

TEST(ExactEvalTest, TopNIsPrefixOfRanking) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Query& q = SmallQueries()[2];
  auto full = ExactRanking(f, SmallModel(), q);
  auto top = ExactTopN(f, SmallModel(), q, 10);
  ASSERT_LE(top.size(), 10u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].doc, full[i].doc);
    EXPECT_DOUBLE_EQ(top[i].score, full[i].score);
  }
}

TEST(ExactEvalTest, NoZeroScoresReturned) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  auto ranking = ExactRanking(f, SmallModel(), SmallQueries()[3]);
  for (const auto& sd : ranking) EXPECT_GT(sd.score, 0.0);
}

TEST(ExactEvalTest, TopNLargerThanMatchesReturnsAll) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Query& q = SmallQueries()[4];
  auto full = ExactRanking(f, SmallModel(), q);
  auto top = ExactTopN(f, SmallModel(), q, f.num_docs() * 2);
  EXPECT_EQ(top.size(), full.size());
}

TEST(ExactEvalTest, CostTicksOnePerPosting) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Query& q = SmallQueries()[5];
  int64_t volume = 0;
  for (TermId t : q.terms) volume += f.DocFrequency(t);
  CostScope scope;
  AccumulateScores(f, SmallModel(), q);
  CostCounters c = scope.Snapshot();
  EXPECT_EQ(c.sequential_reads, volume);
  EXPECT_EQ(c.score_evals, volume);
}

TEST(ExactEvalTest, EmptyQueryYieldsEmptyRanking) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  Query empty;
  EXPECT_TRUE(ExactRanking(f, SmallModel(), empty).empty());
  EXPECT_TRUE(ExactTopN(f, SmallModel(), empty, 5).empty());
}

}  // namespace
}  // namespace moa
