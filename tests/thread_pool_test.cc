#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace moa {
namespace {

TEST(ThreadPoolTest, DefaultParallelismIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1u);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(),
                   [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWithFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPoolTest, ParallelForZeroCountReturnsImmediately) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, PoolIsReusableAcrossParallelForCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(50, [&total](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 250);
}

}  // namespace
}  // namespace moa
