#include <gtest/gtest.h>

#include "algebra/evaluator.h"

namespace moa {
namespace {

ExprPtr IntList(std::initializer_list<int64_t> xs) {
  ValueVec v;
  for (int64_t x : xs) v.push_back(Value::Int(x));
  return Expr::Const(Value::List(std::move(v)));
}

Value Eval(const ExprPtr& e) {
  auto r = Evaluate(e);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ValueOrDie();
}

TEST(ListOpsTest, SelectPaperExample) {
  // select([1,2,3,4,4,5], 2, 4) == [2,3,4,4]  (paper Example 1)
  Value v = Eval(Expr::Apply("LIST.select",
                             {IntList({1, 2, 3, 4, 4, 5}),
                              Expr::Const(Value::Int(2)),
                              Expr::Const(Value::Int(4))}));
  EXPECT_EQ(v, Value::List({Value::Int(2), Value::Int(3), Value::Int(4),
                            Value::Int(4)}));
}

TEST(ListOpsTest, SelectPreservesInputOrder) {
  Value v = Eval(Expr::Apply("LIST.select",
                             {IntList({5, 1, 4, 2, 3}),
                              Expr::Const(Value::Int(2)),
                              Expr::Const(Value::Int(4))}));
  EXPECT_EQ(v, Value::List({Value::Int(4), Value::Int(2), Value::Int(3)}));
}

TEST(ListOpsTest, SelectEmptyRange) {
  Value v = Eval(Expr::Apply("LIST.select",
                             {IntList({1, 2, 3}), Expr::Const(Value::Int(9)),
                              Expr::Const(Value::Int(10))}));
  EXPECT_TRUE(v.Elements().empty());
}

TEST(ListOpsTest, SelectSortedEqualsSelectOnSortedInput) {
  ExprPtr sorted = IntList({1, 2, 3, 4, 4, 5, 9});
  for (auto [lo, hi] : {std::pair{2, 4}, {0, 9}, {5, 5}, {6, 8}}) {
    Value a = Eval(Expr::Apply("LIST.select",
                               {sorted, Expr::Const(Value::Int(lo)),
                                Expr::Const(Value::Int(hi))}));
    Value b = Eval(Expr::Apply("LIST.select_sorted",
                               {sorted, Expr::Const(Value::Int(lo)),
                                Expr::Const(Value::Int(hi))}));
    EXPECT_EQ(a, b) << "range [" << lo << ", " << hi << "]";
  }
}

TEST(ListOpsTest, SortAscendingStable) {
  Value v = Eval(Expr::Apply("LIST.sort", {IntList({3, 1, 2, 1})}));
  EXPECT_EQ(v, Value::List({Value::Int(1), Value::Int(1), Value::Int(2),
                            Value::Int(3)}));
}

TEST(ListOpsTest, TopNReturnsLargestDescending) {
  Value v = Eval(Expr::Apply("LIST.topn",
                             {IntList({4, 9, 1, 7, 3}),
                              Expr::Const(Value::Int(3))}));
  EXPECT_EQ(v, Value::List({Value::Int(9), Value::Int(7), Value::Int(4)}));
}

TEST(ListOpsTest, TopNLargerThanInput) {
  Value v = Eval(Expr::Apply("LIST.topn",
                             {IntList({2, 1}), Expr::Const(Value::Int(10))}));
  EXPECT_EQ(v.Elements().size(), 2u);
}

TEST(ListOpsTest, TopNZero) {
  Value v = Eval(Expr::Apply("LIST.topn",
                             {IntList({2, 1}), Expr::Const(Value::Int(0))}));
  EXPECT_TRUE(v.Elements().empty());
}

TEST(ListOpsTest, TopNNegativeFails) {
  auto r = Evaluate(Expr::Apply(
      "LIST.topn", {IntList({1}), Expr::Const(Value::Int(-1))}));
  EXPECT_FALSE(r.ok());
}

TEST(ListOpsTest, ProjectToBagKeepsElements) {
  Value v = Eval(Expr::Apply("LIST.projecttobag",
                             {IntList({1, 2, 3, 4, 4, 5})}));
  EXPECT_EQ(v.kind(), ValueKind::kBag);
  EXPECT_TRUE(Value::BagEquals(
      v, Value::Bag({Value::Int(1), Value::Int(2), Value::Int(3),
                     Value::Int(4), Value::Int(4), Value::Int(5)})));
}

TEST(ListOpsTest, ConcatAndSliceAndReverse) {
  Value cat = Eval(Expr::Apply("LIST.concat",
                               {IntList({1, 2}), IntList({3})}));
  EXPECT_EQ(cat, Value::List({Value::Int(1), Value::Int(2), Value::Int(3)}));
  Value slice = Eval(Expr::Apply("LIST.slice",
                                 {IntList({1, 2, 3, 4}),
                                  Expr::Const(Value::Int(1)),
                                  Expr::Const(Value::Int(2))}));
  EXPECT_EQ(slice, Value::List({Value::Int(2), Value::Int(3)}));
  Value rev = Eval(Expr::Apply("LIST.reverse", {IntList({1, 2, 3})}));
  EXPECT_EQ(rev, Value::List({Value::Int(3), Value::Int(2), Value::Int(1)}));
}

TEST(ListOpsTest, SliceBeyondEndClamps) {
  Value v = Eval(Expr::Apply("LIST.slice",
                             {IntList({1, 2}), Expr::Const(Value::Int(1)),
                              Expr::Const(Value::Int(99))}));
  EXPECT_EQ(v, Value::List({Value::Int(2)}));
}

TEST(ListOpsTest, SliceNegativeFails) {
  auto r = Evaluate(Expr::Apply("LIST.slice",
                                {IntList({1, 2}), Expr::Const(Value::Int(-1)),
                                 Expr::Const(Value::Int(1))}));
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ListOpsTest, CountAndSum) {
  EXPECT_EQ(Eval(Expr::Apply("LIST.count", {IntList({1, 2, 3})})).AsInt(), 3);
  EXPECT_DOUBLE_EQ(
      Eval(Expr::Apply("LIST.sum", {IntList({1, 2, 3})})).AsDouble(), 6.0);
}

TEST(ListOpsTest, TypeErrors) {
  ExprPtr bag = Expr::Const(Value::Bag({Value::Int(1)}));
  EXPECT_FALSE(Evaluate(Expr::Apply("LIST.sort", {bag})).ok());
  EXPECT_FALSE(Evaluate(Expr::Apply("LIST.count", {bag})).ok());
  // Non-numeric select.
  ExprPtr strings = Expr::Const(Value::List({Value::Str("a")}));
  EXPECT_FALSE(Evaluate(Expr::Apply("LIST.select",
                                    {strings, Expr::Const(Value::Int(0)),
                                     Expr::Const(Value::Int(1))}))
                   .ok());
}

TEST(ListOpsTest, ArityErrors) {
  EXPECT_FALSE(Evaluate(Expr::Apply("LIST.select", {IntList({1})})).ok());
  EXPECT_FALSE(
      Evaluate(Expr::Apply("LIST.sort", {IntList({1}), IntList({2})})).ok());
}

}  // namespace
}  // namespace moa
