#include "ir/scoring.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollection;

class ScoringModelsTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<ScoringModel> MakeModel() {
    auto& file = const_cast<Collection&>(SmallCollection())
                     .mutable_inverted_file();
    const std::string which = GetParam();
    if (which == "tfidf") return MakeTfIdf(&file);
    if (which == "bm25") return MakeBm25(&file);
    return MakeLanguageModel(&file);
  }
};

TEST_P(ScoringModelsTest, WeightsAreNonNegative) {
  auto model = MakeModel();
  const InvertedFile& f = SmallCollection().inverted_file();
  for (TermId t = 0; t < std::min<size_t>(f.num_terms(), 200); ++t) {
    const PostingList& list = f.list(t);
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_GE(model->Weight(t, list[i]), 0.0)
          << "term " << t << " posting " << i;
    }
  }
}

TEST_P(ScoringModelsTest, HigherTfGivesHigherWeight) {
  auto model = MakeModel();
  const InvertedFile& f = SmallCollection().inverted_file();
  // Find a term and compare synthetic postings on the same document.
  for (TermId t = 0; t < f.num_terms(); ++t) {
    if (f.DocFrequency(t) == 0) continue;
    const DocId d = f.list(t)[0].doc;
    const double w1 = model->Weight(t, Posting{d, 1});
    const double w3 = model->Weight(t, Posting{d, 3});
    EXPECT_GT(w3, w1);
    break;
  }
}

TEST_P(ScoringModelsTest, RarerTermsWeighMoreAtEqualTf) {
  auto model = MakeModel();
  const InvertedFile& f = SmallCollection().inverted_file();
  // term 0 is the most frequent; find a rare term and one shared doc length.
  TermId rare = 0;
  for (TermId t = f.num_terms(); t-- > 0;) {
    if (f.DocFrequency(t) >= 1 && f.DocFrequency(t) <= 3) {
      rare = t;
      break;
    }
  }
  ASSERT_GT(f.DocFrequency(rare), 0u);
  const DocId d = f.list(rare)[0].doc;  // same doc => same length norm
  const double w_frequent = model->Weight(0, Posting{d, 2});
  const double w_rare = model->Weight(rare, Posting{d, 2});
  EXPECT_GT(w_rare, w_frequent);
}

TEST_P(ScoringModelsTest, NameIsStable) {
  auto model = MakeModel();
  EXPECT_EQ(model->name(), std::string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ScoringModelsTest,
                         ::testing::Values("tfidf", "bm25", "lm"));

TEST(ScoredDocTest, OrderingIsDescScoreThenAscDoc) {
  EXPECT_TRUE(ScoredDocLess({1, 2.0}, {2, 1.0}));
  EXPECT_FALSE(ScoredDocLess({2, 1.0}, {1, 2.0}));
  EXPECT_TRUE(ScoredDocLess({1, 1.0}, {2, 1.0}));
  EXPECT_FALSE(ScoredDocLess({2, 1.0}, {1, 1.0}));
}

TEST(Bm25Test, ParametersChangeWeights) {
  auto& file = const_cast<Collection&>(SmallCollection())
                   .mutable_inverted_file();
  auto default_model = MakeBm25(&file);
  auto flat_model = MakeBm25(&file, 0.01, 0.0);  // tf saturates immediately
  TermId t = 0;
  while (file.DocFrequency(t) == 0) ++t;
  const DocId d = file.list(t)[0].doc;
  const double ratio_default = default_model->Weight(t, Posting{d, 10}) /
                               default_model->Weight(t, Posting{d, 1});
  const double ratio_flat = flat_model->Weight(t, Posting{d, 10}) /
                            flat_model->Weight(t, Posting{d, 1});
  EXPECT_GT(ratio_default, ratio_flat);
}

TEST(StatsViewBindingTest, ViewBoundModelsMatchFileBoundModels) {
  // The two binding styles (legacy InvertedFile overloads vs an explicit
  // CollectionStatsView) must produce bit-identical weights — this is what
  // makes catalog scoring comparable to static scoring.
  const InvertedFile& file = SmallCollection().inverted_file();
  InvertedFileStatsView view(&file, /*precompute_cf=*/true);
  const std::pair<ScoringModelKind, const char*> kinds[] = {
      {ScoringModelKind::kTfIdf, "tfidf"},
      {ScoringModelKind::kBm25, "bm25"},
      {ScoringModelKind::kLanguageModel, "lm"},
  };
  for (const auto& [kind, name] : kinds) {
    auto by_view = MakeScoringModel(kind, &view);
    ASSERT_NE(by_view, nullptr);
    EXPECT_EQ(by_view->name(), name);
    std::unique_ptr<ScoringModel> by_file;
    if (kind == ScoringModelKind::kTfIdf) by_file = MakeTfIdf(&file);
    if (kind == ScoringModelKind::kBm25) by_file = MakeBm25(&file);
    if (kind == ScoringModelKind::kLanguageModel) {
      by_file = MakeLanguageModel(&file);
    }
    for (TermId t = 0; t < std::min<size_t>(file.num_terms(), 64); ++t) {
      const PostingList& list = file.list(t);
      for (size_t i = 0; i < list.size(); ++i) {
        EXPECT_EQ(by_view->Weight(t, list[i]), by_file->Weight(t, list[i]))
            << name << " term " << t;
      }
    }
  }
}

TEST(LanguageModelTest, LambdaControlsSmoothing) {
  auto& file = const_cast<Collection&>(SmallCollection())
                   .mutable_inverted_file();
  auto lm_low = MakeLanguageModel(&file, 0.05);
  auto lm_high = MakeLanguageModel(&file, 0.9);
  TermId t = 0;
  while (file.DocFrequency(t) == 0) ++t;
  const Posting& p = file.list(t)[0];
  EXPECT_GT(lm_high->Weight(t, p), lm_low->Weight(t, p));
}

}  // namespace
}  // namespace moa
