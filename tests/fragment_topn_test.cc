#include "topn/fragment_topn.h"

#include <gtest/gtest.h>

#include "ir/exact_eval.h"
#include "ir/metrics.h"
#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;
using testutil::SmallFragmentation;
using testutil::SmallModel;
using testutil::SmallQueries;

TEST(SmallFragmentTest, TouchesOnlySmallFragmentPostings) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Fragmentation& frag = SmallFragmentation();
  for (const Query& q : SmallQueries()) {
    int64_t small_volume = 0;
    for (TermId t : q.terms) {
      if (frag.in_small(t)) small_volume += f.DocFrequency(t);
    }
    TopNResult r = SmallFragmentTopN(f, frag, SmallModel(), q, 10);
    EXPECT_EQ(r.stats.cost.sequential_reads, small_volume);
  }
}

TEST(SmallFragmentTest, UnsafeQualityCanDrop) {
  // Across the workload the small-fragment answers must not be uniformly
  // perfect (otherwise the paper's quality-drop claim has no substrate).
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Fragmentation& frag = SmallFragmentation();
  double worst = 1.0;
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, 10);
    auto scores = AccumulateScores(f, SmallModel(), q);
    TopNResult r = SmallFragmentTopN(f, frag, SmallModel(), q, 10);
    QualityReport rep = EvaluateQuality(r.items, exact, scores);
    worst = std::min(worst, rep.overlap_at_n);
  }
  EXPECT_LT(worst, 1.0);
}

TEST(QualitySwitchTest, FullScanZeroThresholdIsExact) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Fragmentation& frag = SmallFragmentation();
  QualitySwitchOptions opts;  // threshold 0, full scan: safe
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, 10);
    auto r = QualitySwitchTopN(f, frag, SmallModel(), q, 10, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const auto& got = r.ValueOrDie().items;
    ASSERT_EQ(got.size(), exact.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].doc, exact[i].doc) << "rank " << i;
      EXPECT_NEAR(got[i].score, exact[i].score, 1e-9);
    }
  }
}

TEST(QualitySwitchTest, SkipModeEqualsSmallFragment) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Fragmentation& frag = SmallFragmentation();
  QualitySwitchOptions opts;
  opts.mode = LargeFragmentMode::kSkip;
  for (const Query& q : SmallQueries()) {
    auto r = QualitySwitchTopN(f, frag, SmallModel(), q, 10, opts);
    ASSERT_TRUE(r.ok());
    TopNResult small = SmallFragmentTopN(f, frag, SmallModel(), q, 10);
    ASSERT_EQ(r.ValueOrDie().items.size(), small.items.size());
    for (size_t i = 0; i < small.items.size(); ++i) {
      EXPECT_EQ(r.ValueOrDie().items[i].doc, small.items[i].doc);
    }
    EXPECT_FALSE(r.ValueOrDie().stats.used_large_fragment);
  }
}

TEST(QualitySwitchTest, HugeThresholdSuppressesLargeFragmentWhenSmallSuffices) {
  // With an (absurdly) high threshold the check only fires when the small
  // fragment could not even fill the top n (n-th score 0): a correct
  // quality check must still switch then.
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Fragmentation& frag = SmallFragmentation();
  QualitySwitchOptions opts;
  opts.switch_threshold = 1e12;
  for (const Query& q : SmallQueries()) {
    auto r = QualitySwitchTopN(f, frag, SmallModel(), q, 10, opts);
    ASSERT_TRUE(r.ok());
    TopNResult small_only = SmallFragmentTopN(f, frag, SmallModel(), q, 10);
    if (small_only.items.size() >= 10) {
      EXPECT_FALSE(r.ValueOrDie().stats.used_large_fragment);
    } else {
      EXPECT_TRUE(r.ValueOrDie().stats.used_large_fragment);
    }
  }
}

TEST(QualitySwitchTest, SparseProbeImprovesOverUnsafeSmallFragment) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Fragmentation& frag = SmallFragmentation();
  QualitySwitchOptions opts;
  opts.mode = LargeFragmentMode::kSparseProbe;
  opts.candidate_pool = 100;
  double sum_sparse = 0.0, sum_small = 0.0;
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, 10);
    auto scores = AccumulateScores(f, SmallModel(), q);
    auto sparse = QualitySwitchTopN(f, frag, SmallModel(), q, 10, opts);
    ASSERT_TRUE(sparse.ok());
    TopNResult small = SmallFragmentTopN(f, frag, SmallModel(), q, 10);
    sum_sparse +=
        EvaluateQuality(sparse.ValueOrDie().items, exact, scores).score_ratio;
    sum_small += EvaluateQuality(small.items, exact, scores).score_ratio;
  }
  EXPECT_GE(sum_sparse, sum_small);
}

TEST(QualitySwitchTest, SparseProbeCheaperThanFullScan) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Fragmentation& frag = SmallFragmentation();
  QualitySwitchOptions full, sparse;
  full.mode = LargeFragmentMode::kFullScan;
  sparse.mode = LargeFragmentMode::kSparseProbe;
  // The probe advantage scales with posting-list length; on this small test
  // collection the pool/block sizes must stay proportionally small too.
  sparse.candidate_pool = 20;
  sparse.champions = 20;
  sparse.sparse_block = 16;
  SparseIndexCache cache;
  sparse.sparse_cache = &cache;
  double full_cost = 0.0, sparse_cost = 0.0;
  for (const Query& q : SmallQueries()) {
    auto rf = QualitySwitchTopN(f, frag, SmallModel(), q, 10, full);
    auto rs = QualitySwitchTopN(f, frag, SmallModel(), q, 10, sparse);
    ASSERT_TRUE(rf.ok() && rs.ok());
    full_cost += rf.ValueOrDie().stats.cost.Scalar();
    sparse_cost += rs.ValueOrDie().stats.cost.Scalar();
  }
  EXPECT_LT(sparse_cost, full_cost);
}

TEST(QualitySwitchTest, SparseCacheIsReused) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Fragmentation& frag = SmallFragmentation();
  QualitySwitchOptions opts;
  opts.mode = LargeFragmentMode::kSparseProbe;
  SparseIndexCache cache;
  opts.sparse_cache = &cache;
  auto r1 = QualitySwitchTopN(f, frag, SmallModel(), SmallQueries()[0], 10, opts);
  ASSERT_TRUE(r1.ok());
  const size_t after_first = cache.size();
  auto r2 = QualitySwitchTopN(f, frag, SmallModel(), SmallQueries()[0], 10, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(cache.size(), after_first);
}

TEST(QualitySwitchTest, RejectsNegativeThreshold) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  QualitySwitchOptions opts;
  opts.switch_threshold = -1.0;
  auto r = QualitySwitchTopN(f, SmallFragmentation(), SmallModel(),
                             SmallQueries()[0], 10, opts);
  EXPECT_FALSE(r.ok());
}

TEST(QualitySwitchTest, AllSmallQueryStopsEarlyWithoutLargePass) {
  // A query consisting only of small-fragment (rare) terms never needs the
  // large fragment.
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Fragmentation& frag = SmallFragmentation();
  Query q;
  for (TermId t = static_cast<TermId>(f.num_terms()); t-- > 0;) {
    if (f.DocFrequency(t) > 0 && frag.in_small(t)) {
      q.terms.push_back(t);
      if (q.terms.size() == 3) break;
    }
  }
  ASSERT_EQ(q.terms.size(), 3u);
  QualitySwitchOptions opts;
  auto r = QualitySwitchTopN(f, frag, SmallModel(), q, 10, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.ValueOrDie().stats.used_large_fragment);
  // And it is exact, because the query never touches the large fragment.
  auto exact = ExactTopN(f, SmallModel(), q, 10);
  ASSERT_EQ(r.ValueOrDie().items.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(r.ValueOrDie().items[i].doc, exact[i].doc);
  }
}

}  // namespace
}  // namespace moa
