#include "topn/baselines.h"

#include <gtest/gtest.h>

#include "ir/exact_eval.h"
#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;
using testutil::SmallModel;
using testutil::SmallQueries;

class BaselinesTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BaselinesTest, FullSortMatchesExactTopN) {
  const size_t n = GetParam();
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, n);
    TopNResult got = FullSortTopN(f, SmallModel(), q, n);
    ASSERT_EQ(got.items.size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(got.items[i].doc, exact[i].doc) << "rank " << i;
      EXPECT_NEAR(got.items[i].score, exact[i].score, 1e-9);
    }
  }
}

TEST_P(BaselinesTest, HeapMatchesFullSort) {
  const size_t n = GetParam();
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  for (const Query& q : SmallQueries()) {
    TopNResult a = FullSortTopN(f, SmallModel(), q, n);
    TopNResult b = HeapTopN(f, SmallModel(), q, n);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].doc, b.items[i].doc) << "rank " << i;
    }
  }
}

TEST_P(BaselinesTest, HeapDoesFewerComparesThanFullSortForSmallN) {
  const size_t n = GetParam();
  if (n > 20) GTEST_SKIP() << "advantage shrinks for large n";
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Query& q = SmallQueries()[0];
  TopNResult full = FullSortTopN(f, SmallModel(), q, n);
  TopNResult heap = HeapTopN(f, SmallModel(), q, n);
  EXPECT_LT(heap.stats.cost.compares, full.stats.cost.compares);
}

INSTANTIATE_TEST_SUITE_P(Ns, BaselinesTest,
                         ::testing::Values(1, 5, 10, 50, 250));

TEST(BaselinesTest, ResultsSortedDescending) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  TopNResult r = HeapTopN(f, SmallModel(), SmallQueries()[0], 20);
  for (size_t i = 1; i < r.items.size(); ++i) {
    EXPECT_TRUE(!ScoredDocLess(r.items[i], r.items[i - 1]));
  }
}

TEST(BaselinesTest, NZeroYieldsEmpty) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  EXPECT_TRUE(HeapTopN(f, SmallModel(), SmallQueries()[0], 0).items.empty());
  EXPECT_TRUE(
      FullSortTopN(f, SmallModel(), SmallQueries()[0], 0).items.empty());
}

TEST(BaselinesTest, StatsReportCandidatesAndCost) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  TopNResult r = FullSortTopN(f, SmallModel(), SmallQueries()[1], 10);
  EXPECT_GT(r.stats.candidates, 0);
  EXPECT_GT(r.stats.cost.sequential_reads, 0);
  EXPECT_GT(r.stats.cost.score_evals, 0);
}

}  // namespace
}  // namespace moa
