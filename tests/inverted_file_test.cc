#include "storage/inverted_file.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

InvertedFile TinyFile() {
  InvertedFileBuilder builder(4);
  // doc 0: t0 x2, t1 x1; doc 1: t1 x3; doc 2: t0 x1, t2 x1, t3 x1
  EXPECT_TRUE(builder.AddDocument(0, {{0, 2}, {1, 1}}).ok());
  EXPECT_TRUE(builder.AddDocument(1, {{1, 3}}).ok());
  EXPECT_TRUE(builder.AddDocument(2, {{0, 1}, {2, 1}, {3, 1}}).ok());
  return builder.Build();
}

TEST(InvertedFileTest, Counts) {
  InvertedFile f = TinyFile();
  EXPECT_EQ(f.num_terms(), 4u);
  EXPECT_EQ(f.num_docs(), 3u);
  EXPECT_EQ(f.num_postings(), 6);
  EXPECT_EQ(f.total_tokens(), 9);
}

TEST(InvertedFileTest, DocFrequencies) {
  InvertedFile f = TinyFile();
  EXPECT_EQ(f.DocFrequency(0), 2u);
  EXPECT_EQ(f.DocFrequency(1), 2u);
  EXPECT_EQ(f.DocFrequency(2), 1u);
  EXPECT_EQ(f.DocFrequency(3), 1u);
}

TEST(InvertedFileTest, DocLengths) {
  InvertedFile f = TinyFile();
  EXPECT_EQ(f.DocLength(0), 3u);
  EXPECT_EQ(f.DocLength(1), 3u);
  EXPECT_EQ(f.DocLength(2), 3u);
  EXPECT_DOUBLE_EQ(f.AverageDocLength(), 3.0);
}

TEST(InvertedFileTest, PostingsAreDocSorted) {
  InvertedFile f = TinyFile();
  const PostingList& t0 = f.list(0);
  ASSERT_EQ(t0.size(), 2u);
  EXPECT_EQ(t0[0].doc, 0u);
  EXPECT_EQ(t0[0].tf, 2u);
  EXPECT_EQ(t0[1].doc, 2u);
}

TEST(InvertedFileBuilderTest, RejectsOutOfOrderDocs) {
  InvertedFileBuilder builder(2);
  EXPECT_TRUE(builder.AddDocument(0, {{0, 1}}).ok());
  Status s = builder.AddDocument(2, {{0, 1}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(InvertedFileBuilderTest, RejectsDuplicateTerms) {
  InvertedFileBuilder builder(2);
  Status s = builder.AddDocument(0, {{1, 1}, {1, 2}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(InvertedFileBuilderTest, RejectsUnknownTerm) {
  InvertedFileBuilder builder(2);
  Status s = builder.AddDocument(0, {{5, 1}});
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(InvertedFileBuilderTest, RejectsZeroTf) {
  InvertedFileBuilder builder(2);
  Status s = builder.AddDocument(0, {{0, 0}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(InvertedFileBuilderTest, EmptyDocumentAllowed) {
  InvertedFileBuilder builder(2);
  EXPECT_TRUE(builder.AddDocument(0, {}).ok());
  InvertedFile f = builder.Build();
  EXPECT_EQ(f.num_docs(), 1u);
  EXPECT_EQ(f.DocLength(0), 0u);
}

TEST(InvertedFileTest, BuildImpactOrdersUsesWeightCallback) {
  InvertedFile f = TinyFile();
  // Weight = tf, so impact order = descending tf.
  f.BuildImpactOrders([](TermId, const Posting& p) {
    return static_cast<double>(p.tf);
  });
  const PostingList& t1 = f.list(1);
  ASSERT_TRUE(t1.has_impact_order());
  EXPECT_EQ(t1.ByImpact(0).doc, 1u);  // tf 3
  EXPECT_EQ(t1.ByImpact(1).doc, 0u);  // tf 1
}

}  // namespace
}  // namespace moa
