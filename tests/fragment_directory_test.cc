// MOAFRG01 fragment-directory acceptance + negatives, with the same rigor
// as the PR 3 segment negatives: round trip through the writer, lazy
// impact order equal to the materialized one, and rejection of every
// corruption class — truncation at any length, fragment ranges that
// overlap / leave gaps / exceed the term's blocks, impact-order
// violations, corrupted bounds, and a model stamp that disagrees with the
// segment (which must also fail MmDatabase::AttachSegment).
#include "storage/segment/fragment_directory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "engine/database.h"
#include "ir/scoring.h"
#include "storage/inverted_file.h"
#include "storage/segment/segment_reader.h"
#include "storage/segment/segment_writer.h"

namespace moa {
namespace {

/// Deterministic collection with enough volume that long terms span many
/// blocks (block size 4) and several fragments (fragment_blocks 2).
struct Fixture {
  InvertedFile file;
  std::unique_ptr<ScoringModel> model;
  std::string segment_path;
  std::string sidecar_path;

  Fixture() {
    InvertedFileBuilder builder(/*num_terms=*/8);
    for (DocId d = 0; d < 400; ++d) {
      std::vector<std::pair<TermId, uint32_t>> terms;
      terms.emplace_back(d % 8, 1 + d % 3);            // short lists
      if (d % 2 == 0) terms.emplace_back(6, 1 + d % 7);  // ~200 postings
      if (d % 3 == 0) terms.emplace_back(7, 1 + d % 5);  // ~134 postings
      // Dedup: term ids 6/7 may repeat via d % 8.
      std::sort(terms.begin(), terms.end());
      terms.erase(std::unique(terms.begin(), terms.end(),
                              [](const auto& a, const auto& b) {
                                return a.first == b.first;
                              }),
                  terms.end());
      EXPECT_TRUE(builder.AddDocument(d, terms).ok());
    }
    file = builder.Build();
    model = MakeBm25(&file);
    file.BuildImpactOrders(
        [&](TermId t, const Posting& p) { return model->Weight(t, p); });

    segment_path = std::string(::testing::TempDir()) + "/frag.moaseg";
    sidecar_path = FragmentSidecarPath(segment_path);
    SegmentWriterOptions options;
    options.block_size = 4;
    options.fragment_blocks = 2;
    options.impact_fn = [&](TermId t, const Posting& p) {
      return model->Weight(t, p);
    };
    options.impact_model = model->name();
    EXPECT_TRUE(WriteSegment(file, segment_path, options).ok());
  }

  ~Fixture() {
    std::remove(segment_path.c_str());
    std::remove(sidecar_path.c_str());
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Copies the fixture pair into a scratch location and applies `mutate`
/// to the sidecar bytes; returns the scratch segment path.
std::string CorruptedSidecar(
    const char* tag,
    const std::function<void(std::vector<char>&)>& mutate) {
  Fixture& f = SharedFixture();
  const std::string path =
      std::string(::testing::TempDir()) + "/frag_" + tag + ".moaseg";
  std::filesystem::copy_file(
      f.segment_path, path,
      std::filesystem::copy_options::overwrite_existing);
  std::vector<char> bytes = ReadAll(f.sidecar_path);
  mutate(bytes);
  WriteAll(FragmentSidecarPath(path), bytes);
  return path;
}

void ExpectOpenRejects(const std::string& segment_path, const char* label) {
  auto reader = SegmentReader::Open(segment_path);
  EXPECT_FALSE(reader.ok()) << label;
  if (!reader.ok()) {
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument) << label;
  }
  std::remove(segment_path.c_str());
  std::remove(FragmentSidecarPath(segment_path).c_str());
}

/// Sidecar layout offsets for surgical corruption.
struct SidecarMap {
  FragmentFileHeader header;
  std::vector<TermFragEntry> terms;
  std::vector<FragDirEntry> fragments;

  static SidecarMap Parse(const std::vector<char>& bytes) {
    SidecarMap map;
    std::memcpy(&map.header, bytes.data(), sizeof(map.header));
    map.terms.resize(map.header.num_terms);
    std::memcpy(map.terms.data(), bytes.data() + sizeof(map.header),
                map.terms.size() * sizeof(TermFragEntry));
    map.fragments.resize(map.header.num_fragments);
    std::memcpy(map.fragments.data(),
                bytes.data() + sizeof(map.header) +
                    map.terms.size() * sizeof(TermFragEntry),
                map.fragments.size() * sizeof(FragDirEntry));
    return map;
  }

  static size_t FragmentOffset(size_t index) {
    return sizeof(FragmentFileHeader) +
           SharedFixture().file.num_terms() * sizeof(TermFragEntry) +
           index * sizeof(FragDirEntry);
  }

  /// Index (into fragments) of the first fragment of a term with >= 2.
  size_t MultiFragmentTermBegin(uint32_t* count_out) const {
    for (const TermFragEntry& term : terms) {
      if (term.frag_count >= 2) {
        *count_out = term.frag_count;
        return term.frag_begin;
      }
    }
    ADD_FAILURE() << "fixture has no multi-fragment term";
    return 0;
  }
};

TEST(FragmentDirectoryTest, WriterEmitsValidatedSidecar) {
  Fixture& f = SharedFixture();
  ASSERT_TRUE(std::filesystem::exists(f.sidecar_path));
  auto reader = SegmentReader::Open(f.segment_path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader.ValueOrDie()->has_fragment_directory());
  const FragmentDirectory& dir = reader.ValueOrDie()->fragment_directory();
  EXPECT_EQ(dir.terms.size(), f.file.num_terms());
  // Long terms genuinely fragment (block size 4, two blocks per
  // fragment, ~200 postings -> ~25 fragments).
  EXPECT_GE(dir.terms[6].frag_count, 10u);
}

TEST(FragmentDirectoryTest, LazyImpactOrderEqualsMaterializedOrder) {
  Fixture& f = SharedFixture();
  auto reader = SegmentReader::Open(f.segment_path);
  ASSERT_TRUE(reader.ok());
  for (TermId t = 0; t < f.file.num_terms(); ++t) {
    auto cursor = reader.ValueOrDie()->OpenImpactCursor(t, *f.model);
    const PostingList& list = f.file.list(t);
    for (size_t i = 0; i < list.size(); ++i) {
      ASSERT_FALSE(cursor->at_end()) << "term " << t << " rank " << i;
      EXPECT_EQ(cursor->doc(), list.ByImpact(i).doc) << "term " << t;
      EXPECT_EQ(cursor->weight(), list.ImpactWeight(i)) << "term " << t;
      cursor->next();
    }
    EXPECT_TRUE(cursor->at_end()) << "term " << t;
  }
}

TEST(FragmentDirectoryTest, MissingSidecarDegradesToSingleFragment) {
  Fixture& f = SharedFixture();
  const std::string path =
      std::string(::testing::TempDir()) + "/frag_nosidecar.moaseg";
  std::filesystem::copy_file(
      f.segment_path, path,
      std::filesystem::copy_options::overwrite_existing);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader.ValueOrDie()->has_fragment_directory());
  auto fragments = reader.ValueOrDie()->OpenFragmentCursor(6);
  EXPECT_EQ(fragments->num_fragments(), 1u);
  // Impact order still exact, just not lazy.
  auto cursor = reader.ValueOrDie()->OpenImpactCursor(6, *f.model);
  EXPECT_EQ(cursor->doc(), f.file.list(6).ByImpact(0).doc);
  std::remove(path.c_str());
}

TEST(FragmentDirectoryTest, RewriteWithoutImpactsDropsStaleSidecar) {
  Fixture& f = SharedFixture();
  const std::string path =
      std::string(::testing::TempDir()) + "/frag_rewrite.moaseg";
  SegmentWriterOptions with;
  with.block_size = 4;
  with.impact_fn = [&](TermId t, const Posting& p) {
    return f.model->Weight(t, p);
  };
  ASSERT_TRUE(WriteSegment(f.file, path, with).ok());
  ASSERT_TRUE(std::filesystem::exists(FragmentSidecarPath(path)));
  // Rewriting the same path without impacts must not leave the old
  // sidecar lying around (it would describe bounds the new segment does
  // not have and fail the open).
  ASSERT_TRUE(WriteSegment(f.file, path, SegmentWriterOptions{}).ok());
  EXPECT_FALSE(std::filesystem::exists(FragmentSidecarPath(path)));
  EXPECT_TRUE(SegmentReader::Open(path).ok());
  std::remove(path.c_str());
}

TEST(FragmentDirectoryTest, FragmentBlocksZeroDisablesSidecar) {
  Fixture& f = SharedFixture();
  const std::string path =
      std::string(::testing::TempDir()) + "/frag_disabled.moaseg";
  SegmentWriterOptions options;
  options.block_size = 4;
  options.fragment_blocks = 0;
  options.impact_fn = [&](TermId t, const Posting& p) {
    return f.model->Weight(t, p);
  };
  ASSERT_TRUE(WriteSegment(f.file, path, options).ok());
  EXPECT_FALSE(std::filesystem::exists(FragmentSidecarPath(path)));
  std::remove(path.c_str());
}

TEST(FragmentDirectoryTest, TruncationAtEveryLengthIsRejected) {
  Fixture& f = SharedFixture();
  const std::vector<char> full = ReadAll(f.sidecar_path);
  ASSERT_GT(full.size(), sizeof(FragmentFileHeader));
  // Every proper prefix must fail: the header-derived size is exact.
  for (size_t len = 0; len < full.size();
       len += (len < sizeof(FragmentFileHeader) ? 7 : 129)) {
    const std::string path = CorruptedSidecar(
        "trunc", [len](std::vector<char>& bytes) { bytes.resize(len); });
    ExpectOpenRejects(path, "truncated sidecar");
  }
}

TEST(FragmentDirectoryTest, BadMagicIsRejected) {
  const std::string path = CorruptedSidecar(
      "magic", [](std::vector<char>& bytes) { bytes[0] ^= 0x20; });
  ExpectOpenRejects(path, "bad magic");
}

TEST(FragmentDirectoryTest, OverlappingFragmentRangesAreRejected) {
  // Point the term's second-listed fragment at the first one's block
  // range: same bounds, overlapping coverage -> partition check fires.
  const std::string path =
      CorruptedSidecar("overlap", [](std::vector<char>& bytes) {
        SidecarMap map = SidecarMap::Parse(bytes);
        uint32_t count = 0;
        const size_t begin = map.MultiFragmentTermBegin(&count);
        FragDirEntry second = map.fragments[begin + 1];
        const FragDirEntry& first = map.fragments[begin];
        second.block_begin = first.block_begin;
        second.block_count = first.block_count;
        std::memcpy(bytes.data() + SidecarMap::FragmentOffset(begin + 1),
                    &second, sizeof(second));
      });
  ExpectOpenRejects(path, "overlapping ranges");
}

TEST(FragmentDirectoryTest, RangeBeyondTermBlocksIsRejected) {
  const std::string path =
      CorruptedSidecar("range", [](std::vector<char>& bytes) {
        SidecarMap map = SidecarMap::Parse(bytes);
        uint32_t count = 0;
        const size_t begin = map.MultiFragmentTermBegin(&count);
        FragDirEntry frag = map.fragments[begin];
        frag.block_begin = 1u << 20;  // far past any term's block count
        std::memcpy(bytes.data() + SidecarMap::FragmentOffset(begin), &frag,
                    sizeof(frag));
      });
  ExpectOpenRejects(path, "range beyond blocks");
}

TEST(FragmentDirectoryTest, ImpactOrderViolationIsRejected) {
  // Swap a term's strongest and weakest fragments: the directory is no
  // longer descending in max impact.
  const std::string path =
      CorruptedSidecar("order", [](std::vector<char>& bytes) {
        SidecarMap map = SidecarMap::Parse(bytes);
        uint32_t count = 0;
        const size_t begin = map.MultiFragmentTermBegin(&count);
        // Find two fragments of the term with different bounds (the
        // BM25 weights vary, so the first and last differ).
        const FragDirEntry first = map.fragments[begin];
        const FragDirEntry last = map.fragments[begin + count - 1];
        ASSERT_NE(first.max_impact, last.max_impact)
            << "fixture bounds degenerate";
        std::memcpy(bytes.data() + SidecarMap::FragmentOffset(begin), &last,
                    sizeof(last));
        std::memcpy(
            bytes.data() + SidecarMap::FragmentOffset(begin + count - 1),
            &first, sizeof(first));
      });
  ExpectOpenRejects(path, "impact order violation");
}

TEST(FragmentDirectoryTest, CorruptedBoundIsRejected) {
  // Understating a bound is the dangerous direction (lazy decode would
  // emit out of order); the cross-check against the block directory
  // catches any drift, bit-for-bit.
  const std::string path =
      CorruptedSidecar("bound", [](std::vector<char>& bytes) {
        SidecarMap map = SidecarMap::Parse(bytes);
        uint32_t count = 0;
        const size_t begin = map.MultiFragmentTermBegin(&count);
        FragDirEntry frag = map.fragments[begin];
        frag.max_impact *= 0.5;
        std::memcpy(bytes.data() + SidecarMap::FragmentOffset(begin), &frag,
                    sizeof(frag));
      });
  ExpectOpenRejects(path, "corrupted bound");
}

TEST(FragmentDirectoryTest, ModelMismatchIsRejectedAtAttach) {
  // A sidecar stamped with a different scoring model than the segment:
  // its bounds mean nothing under the serving model. Open must refuse,
  // and so must the engine's attach path.
  const std::string path =
      CorruptedSidecar("model", [](std::vector<char>& bytes) {
        FragmentFileHeader header;
        std::memcpy(&header, bytes.data(), sizeof(header));
        std::memset(header.impact_model, 0, sizeof(header.impact_model));
        std::snprintf(header.impact_model, sizeof(header.impact_model),
                      "lm(lambda=0.15)");
        std::memcpy(bytes.data(), &header, sizeof(header));
      });
  ExpectOpenRejects(path, "model mismatch (reader)");

  // End-to-end through the engine: a database whose SaveSegment produced
  // a matching pair attaches fine; the same segment with a doctored
  // sidecar must be refused by AttachSegment (which goes through Open).
  DatabaseConfig config;
  config.collection.num_docs = 200;
  config.collection.vocabulary = 300;
  config.collection.seed = 515253;
  auto db = MmDatabase::Open(config);
  ASSERT_TRUE(db.ok());
  const std::string attach_path =
      std::string(::testing::TempDir()) + "/frag_attach.moaseg";
  ASSERT_TRUE(db.ValueOrDie()->SaveSegment(attach_path, /*block_size=*/8)
                  .ok());
  ASSERT_TRUE(db.ValueOrDie()->AttachSegment(attach_path).ok());
  db.ValueOrDie()->DetachSegment();

  std::vector<char> bytes = ReadAll(FragmentSidecarPath(attach_path));
  FragmentFileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  std::memset(header.impact_model, 0, sizeof(header.impact_model));
  std::snprintf(header.impact_model, sizeof(header.impact_model),
                "tfidf-log");
  std::memcpy(bytes.data(), &header, sizeof(header));
  WriteAll(FragmentSidecarPath(attach_path), bytes);
  Status attached = db.ValueOrDie()->AttachSegment(attach_path);
  EXPECT_EQ(attached.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(db.ValueOrDie()->has_segment());
  std::remove(attach_path.c_str());
  std::remove(FragmentSidecarPath(attach_path).c_str());
}

TEST(FragmentDirectoryTest, SidecarFromAnotherSegmentIsRejected) {
  // A valid sidecar belonging to a *different* collection (other
  // vocabulary size): structural checks pass, cross-validation must not.
  Fixture& f = SharedFixture();
  InvertedFileBuilder builder(/*num_terms=*/3);
  for (DocId d = 0; d < 40; ++d) {
    EXPECT_TRUE(builder.AddDocument(d, {{d % 3, 1}}).ok());
  }
  InvertedFile other = builder.Build();
  auto other_model = MakeBm25(&other);
  const std::string other_path =
      std::string(::testing::TempDir()) + "/frag_other.moaseg";
  SegmentWriterOptions options;
  options.block_size = 4;
  options.fragment_blocks = 2;
  options.impact_fn = [&](TermId t, const Posting& p) {
    return other_model->Weight(t, p);
  };
  options.impact_model = other_model->name();
  ASSERT_TRUE(WriteSegment(other, other_path, options).ok());

  const std::string path =
      std::string(::testing::TempDir()) + "/frag_swapped.moaseg";
  std::filesystem::copy_file(
      f.segment_path, path,
      std::filesystem::copy_options::overwrite_existing);
  std::filesystem::copy_file(
      FragmentSidecarPath(other_path), FragmentSidecarPath(path),
      std::filesystem::copy_options::overwrite_existing);
  ExpectOpenRejects(path, "foreign sidecar");
  std::remove(other_path.c_str());
  std::remove(FragmentSidecarPath(other_path).c_str());
}

}  // namespace
}  // namespace moa
