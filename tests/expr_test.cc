#include "algebra/expr.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

TEST(ExprTest, ConstLeaf) {
  ExprPtr e = Expr::Const(Value::Int(5));
  EXPECT_EQ(e->kind(), Expr::Kind::kConst);
  EXPECT_EQ(e->constant().AsInt(), 5);
  EXPECT_EQ(e->TreeSize(), 1u);
}

TEST(ExprTest, ApplySplitsExtensionAndOp) {
  ExprPtr e = Expr::Apply("LIST.select", {Expr::Const(Value::Int(1))});
  EXPECT_EQ(e->ExtensionName(), "LIST");
  EXPECT_EQ(e->OpName(), "select");
  EXPECT_EQ(e->args().size(), 1u);
}

TEST(ExprTest, TreeSizeCountsAllNodes) {
  ExprPtr leaf = Expr::Const(Value::Int(1));
  ExprPtr inner = Expr::Apply("LIST.sort", {leaf});
  ExprPtr root = Expr::Apply("LIST.topn", {inner, Expr::Const(Value::Int(3))});
  EXPECT_EQ(root->TreeSize(), 4u);
}

TEST(ExprTest, EqualityStructural) {
  auto make = [] {
    return Expr::Apply("LIST.select",
                       {Expr::Const(Value::List({Value::Int(1)})),
                        Expr::Const(Value::Int(0)),
                        Expr::Const(Value::Int(2))});
  };
  EXPECT_TRUE(Expr::Equal(make(), make()));
  ExprPtr different = Expr::Apply("LIST.select",
                                  {Expr::Const(Value::List({Value::Int(1)})),
                                   Expr::Const(Value::Int(0)),
                                   Expr::Const(Value::Int(3))});
  EXPECT_FALSE(Expr::Equal(make(), different));
}

TEST(ExprTest, EqualityDifferentOps) {
  ExprPtr a = Expr::Apply("LIST.sort", {Expr::Const(Value::Int(1))});
  ExprPtr b = Expr::Apply("LIST.reverse", {Expr::Const(Value::Int(1))});
  EXPECT_FALSE(Expr::Equal(a, b));
}

TEST(ExprTest, ToStringNested) {
  ExprPtr e = Expr::Apply(
      "BAG.select", {Expr::Apply("LIST.projecttobag",
                                 {Expr::Const(Value::List({Value::Int(1)}))}),
                     Expr::Const(Value::Int(2)), Expr::Const(Value::Int(4))});
  EXPECT_EQ(e->ToString(), "BAG.select(LIST.projecttobag([1]), 2, 4)");
}

TEST(ExprTest, ToStringAbbreviatesLargeConstants) {
  ValueVec big;
  for (int i = 0; i < 100; ++i) big.push_back(Value::Int(i));
  ExprPtr e = Expr::Const(Value::List(std::move(big)));
  EXPECT_EQ(e->ToString(), "LIST<100 elems>");
}

}  // namespace
}  // namespace moa
