#include "engine/hybrid.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ir/exact_eval.h"
#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;
using testutil::SmallModel;
using testutil::SmallQueries;

/// Deterministic synthetic attribute ("publication date") per document.
const std::vector<double>& Attribute() {
  static const std::vector<double>* attr = [] {
    const size_t n = SmallCollectionWithImpacts().inverted_file().num_docs();
    Rng rng(777);
    auto* v = new std::vector<double>(n);
    for (size_t i = 0; i < n; ++i) (*v)[i] = rng.NextDouble() * 100.0;
    return v;
  }();
  return *attr;
}

/// Reference implementation: exact filtered ranking.
std::vector<ScoredDoc> ExactHybrid(const Query& q,
                                   const AttributePredicate& pred, size_t n) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  auto ranking = ExactRanking(f, SmallModel(), q);
  std::vector<ScoredDoc> out;
  for (const auto& sd : ranking) {
    if (pred.Matches(Attribute()[sd.doc])) {
      out.push_back(sd);
      if (out.size() == n) break;
    }
  }
  return out;
}

struct HybridCase {
  HybridPlan plan;
  double lo, hi;
  const char* label;
};

class HybridTest : public ::testing::TestWithParam<HybridCase> {};

TEST_P(HybridTest, BothPlansAreExact) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const HybridCase& param = GetParam();
  AttributePredicate pred{param.lo, param.hi};
  HybridOptions opts;
  opts.plan = param.plan;
  for (const Query& q : SmallQueries()) {
    auto expect = ExactHybrid(q, pred, 10);
    auto r = HybridTopN(f, SmallModel(), q, Attribute(), pred, 10, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const auto& got = r.ValueOrDie().items;
    ASSERT_EQ(got.size(), expect.size()) << param.label;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].doc, expect[i].doc)
          << param.label << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Plans, HybridTest,
    ::testing::Values(
        HybridCase{HybridPlan::kFilterFirst, 0.0, 100.0, "ff_all"},
        HybridCase{HybridPlan::kRankFirst, 0.0, 100.0, "rf_all"},
        HybridCase{HybridPlan::kFilterFirst, 40.0, 60.0, "ff_mid"},
        HybridCase{HybridPlan::kRankFirst, 40.0, 60.0, "rf_mid"},
        HybridCase{HybridPlan::kFilterFirst, 10.0, 11.0, "ff_narrow"},
        HybridCase{HybridPlan::kRankFirst, 10.0, 11.0, "rf_narrow"},
        HybridCase{HybridPlan::kAuto, 0.0, 100.0, "auto_all"},
        HybridCase{HybridPlan::kAuto, 10.0, 11.0, "auto_narrow"}),
    [](const ::testing::TestParamInfo<HybridCase>& info) {
      return info.param.label;
    });

TEST(HybridTest, AutoPicksRankFirstForWidePredicate) {
  HybridOptions opts;
  EXPECT_EQ(ChooseHybridPlan(Attribute(), {0.0, 100.0}, opts),
            HybridPlan::kRankFirst);
}

TEST(HybridTest, AutoPicksFilterFirstForNarrowPredicate) {
  HybridOptions opts;
  EXPECT_EQ(ChooseHybridPlan(Attribute(), {10.0, 11.0}, opts),
            HybridPlan::kFilterFirst);
}

TEST(HybridTest, RankFirstRestartsOnSelectivePredicate) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  HybridOptions opts;
  opts.plan = HybridPlan::kRankFirst;
  opts.overfetch = 1.0;  // deliberately tight
  AttributePredicate narrow{5.0, 7.0};
  int restarts = 0;
  for (const Query& q : SmallQueries()) {
    auto r = HybridTopN(f, SmallModel(), q, Attribute(), narrow, 10, opts);
    ASSERT_TRUE(r.ok());
    restarts += r.ValueOrDie().stats.restarts;
  }
  EXPECT_GT(restarts, 0);
}

TEST(HybridTest, RankFirstCheaperOnNonSelectivePredicate) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  AttributePredicate wide{0.0, 100.0};
  HybridOptions ff, rf;
  ff.plan = HybridPlan::kFilterFirst;
  rf.plan = HybridPlan::kRankFirst;
  double ff_work = 0.0, rf_work = 0.0;
  for (const Query& q : SmallQueries()) {
    ff_work += HybridTopN(f, SmallModel(), q, Attribute(), wide, 10, ff)
                   .ValueOrDie().stats.cost.Scalar();
    rf_work += HybridTopN(f, SmallModel(), q, Attribute(), wide, 10, rf)
                   .ValueOrDie().stats.cost.Scalar();
  }
  // Filter-first pays a full attribute scan per query (D seq reads); with a
  // non-selective predicate rank-first avoids it... but pays the full sort.
  // On this small collection they are close; just check both completed and
  // rank-first probed far fewer attribute values than D per query.
  EXPECT_GT(ff_work, 0.0);
  EXPECT_GT(rf_work, 0.0);
}

TEST(HybridTest, ValidatesInputs) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  std::vector<double> short_attr(3, 0.0);
  EXPECT_FALSE(HybridTopN(f, SmallModel(), SmallQueries()[0], short_attr,
                          {0, 1}, 10)
                   .ok());
  EXPECT_FALSE(HybridTopN(f, SmallModel(), SmallQueries()[0], Attribute(),
                          {5.0, 1.0}, 10)
                   .ok());
  HybridOptions bad;
  bad.overfetch = 0.5;
  EXPECT_FALSE(HybridTopN(f, SmallModel(), SmallQueries()[0], Attribute(),
                          {0, 1}, 10, bad)
                   .ok());
}

TEST(HybridTest, EmptyPredicateRangeYieldsEmpty) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  AttributePredicate impossible{200.0, 300.0};
  auto r = HybridTopN(f, SmallModel(), SmallQueries()[0], Attribute(),
                      impossible, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().items.empty());
}

}  // namespace
}  // namespace moa
