#include "optimizer/explain.h"

#include <gtest/gtest.h>

#include "engine/query_builder.h"

namespace moa {
namespace {

TEST(ExplainExprTest, RendersTreeWithIndentation) {
  ExprPtr e = QueryBuilder::List({1, 2, 3}).Sort().TopN(2).Build();
  const std::string text = ExplainExpr(e);
  EXPECT_NE(text.find("LIST.topn"), std::string::npos);
  EXPECT_NE(text.find("  LIST.sort"), std::string::npos);
  EXPECT_NE(text.find("    [1, 2, 3]"), std::string::npos);
}

TEST(ExplainExprTest, AnnotatesSortedness) {
  ExprPtr sorted = QueryBuilder::List({1, 2, 3}).Build();
  EXPECT_NE(ExplainExpr(sorted).find("[sorted]"), std::string::npos);
  ExprPtr unsorted = QueryBuilder::List({3, 1, 2}).Build();
  EXPECT_EQ(ExplainExpr(unsorted).find("[sorted]"), std::string::npos);
}

TEST(ExplainExprTest, AnnotatesPhysicalOrderOnBags) {
  ExprPtr bag = QueryBuilder::List({1, 2, 3}).ProjectToBag().Build();
  EXPECT_NE(ExplainExpr(bag).find("[physically-sorted]"), std::string::npos);
}

TEST(ExplainExprTest, AbbreviatesBigLeaves) {
  std::vector<double> big(100, 1.0);
  ExprPtr e = QueryBuilder::ListOf(big).Sort().Build();
  EXPECT_NE(ExplainExpr(e).find("LIST<100 elems>"), std::string::npos);
}

TEST(ExplainTraceTest, EmptyTrace) {
  RewriteTrace trace;
  EXPECT_EQ(ExplainTrace(trace), "(no rules fired)");
}

TEST(ExplainTraceTest, ChainsRuleNames) {
  RewriteTrace trace;
  trace.fired = {"a", "b", "c"};
  EXPECT_EQ(ExplainTrace(trace), "a -> b -> c");
}

}  // namespace
}  // namespace moa
