#include "ir/metrics.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

std::vector<ScoredDoc> Docs(std::initializer_list<DocId> ids) {
  std::vector<ScoredDoc> out;
  double s = 1.0;
  for (DocId d : ids) {
    out.push_back(ScoredDoc{d, s});
    s *= 0.9;
  }
  return out;
}

TEST(MetricsTest, PerfectAnswer) {
  auto truth = Docs({1, 2, 3});
  std::vector<double> scores(10, 0.0);
  scores[1] = 1.0;
  scores[2] = 0.9;
  scores[3] = 0.81;
  QualityReport r = EvaluateQuality(truth, truth, scores);
  EXPECT_DOUBLE_EQ(r.overlap_at_n, 1.0);
  EXPECT_NEAR(r.score_ratio, 1.0, 1e-12);
  EXPECT_NEAR(r.kendall_tau, 1.0, 1e-12);
  EXPECT_TRUE(r.exact_match);
}

TEST(MetricsTest, DisjointAnswer) {
  auto truth = Docs({1, 2, 3});
  auto answer = Docs({7, 8, 9});
  std::vector<double> scores(10, 0.0);
  scores[1] = 1.0;
  scores[2] = 0.9;
  scores[3] = 0.81;
  QualityReport r = EvaluateQuality(answer, truth, scores);
  EXPECT_DOUBLE_EQ(r.overlap_at_n, 0.0);
  EXPECT_DOUBLE_EQ(r.score_ratio, 0.0);
  EXPECT_FALSE(r.exact_match);
}

TEST(MetricsTest, PartialOverlap) {
  auto truth = Docs({1, 2, 3, 4});
  auto answer = Docs({1, 2, 8, 9});
  std::vector<double> scores(10, 0.0);
  scores[1] = 4;
  scores[2] = 3;
  scores[3] = 2;
  scores[4] = 1;
  QualityReport r = EvaluateQuality(answer, truth, scores);
  EXPECT_DOUBLE_EQ(r.overlap_at_n, 0.5);
  EXPECT_NEAR(r.score_ratio, 7.0 / 10.0, 1e-12);
}

TEST(MetricsTest, ReversedOrderHasNegativeTau) {
  auto truth = Docs({1, 2, 3, 4, 5});
  std::vector<ScoredDoc> answer(truth.rbegin(), truth.rend());
  std::vector<double> scores(10, 0.0);
  for (const auto& sd : truth) scores[sd.doc] = sd.score;
  QualityReport r = EvaluateQuality(answer, truth, scores);
  EXPECT_LT(r.kendall_tau, 0.0);
  EXPECT_DOUBLE_EQ(r.overlap_at_n, 1.0);  // same set
  EXPECT_FALSE(r.exact_match);            // different order
}

TEST(MetricsTest, EmptyTruth) {
  QualityReport r = EvaluateQuality({}, {}, {});
  EXPECT_DOUBLE_EQ(r.overlap_at_n, 1.0);
  EXPECT_TRUE(r.exact_match);
  QualityReport r2 = EvaluateQuality(Docs({1}), {}, {});
  EXPECT_DOUBLE_EQ(r2.overlap_at_n, 0.0);
}

TEST(MetricsTest, MeanHelpers) {
  std::vector<QualityReport> reports(2);
  reports[0].overlap_at_n = 1.0;
  reports[0].score_ratio = 0.8;
  reports[1].overlap_at_n = 0.5;
  reports[1].score_ratio = 0.4;
  EXPECT_DOUBLE_EQ(MeanOverlap(reports), 0.75);
  EXPECT_DOUBLE_EQ(MeanScoreRatio(reports), 0.6);
  EXPECT_DOUBLE_EQ(MeanOverlap({}), 0.0);
}

}  // namespace
}  // namespace moa
