// BackgroundMaintenance tests: trigger policy (flush by memtable size,
// size-tiered merge by segment count), concurrent mutation vs background
// job interleaving (the TSan target for the torn-manifest regression),
// write backpressure in both block and soft-fail modes, rate limiting,
// sharded attachment with snapshot-cache invalidation, and clean
// detach-on-destruction.
#include "storage/catalog/background_jobs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/catalog/sharded_catalog.h"

namespace moa {
namespace {

constexpr size_t kVocab = 32;

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/bg_" + name +
                          "_" +
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name();
  std::filesystem::remove_all(dir);
  return dir;
}

IndexCatalog::Options InDir(const std::string& dir) {
  IndexCatalog::Options options;
  options.num_terms = kVocab;
  options.dir = dir;
  return options;
}

DocTerms Doc(uint32_t seed) {
  return {{1 + seed % (kVocab - 1), 1 + seed % 5}};
}

TEST(BackgroundJobsTest, FlushTriggersOnMemtableSize) {
  const std::string dir = FreshDir("flush_trigger");
  auto catalog = IndexCatalog::Create(InDir(dir));
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  auto& c = *catalog.ValueOrDie();

  MaintenancePolicy policy;
  policy.flush_trigger_docs = 8;
  policy.merge_trigger_segments = 0;  // merges off
  BackgroundMaintenance maintenance(&c, policy);

  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(c.AddDocument(Doc(i)).ok());
  }
  maintenance.WaitIdle();
  EXPECT_TRUE(maintenance.TakeLastError().ok());

  auto state = c.Snapshot();
  // Everything above the trigger has been flushed to segments; at most
  // trigger-1 docs may still sit in the memtable.
  EXPECT_GE(state->segments().size(), 1u);
  EXPECT_LT(state->memtable().num_docs(), policy.flush_trigger_docs);
  EXPECT_EQ(state->stats().num_live_docs, 20u);
}

TEST(BackgroundJobsTest, MergeKeepsSegmentCountBounded) {
  const std::string dir = FreshDir("merge_trigger");
  auto catalog = IndexCatalog::Create(InDir(dir));
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();

  MaintenancePolicy policy;
  policy.flush_trigger_docs = 2;
  policy.merge_trigger_segments = 4;
  policy.merge_fanin = 3;
  BackgroundMaintenance maintenance(&c, policy);

  for (uint32_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(c.AddDocument(Doc(i)).ok());
  }
  maintenance.WaitIdle();
  EXPECT_TRUE(maintenance.TakeLastError().ok());

  auto state = c.Snapshot();
  // The merge loop compacts whenever the count reaches the trigger, so a
  // settled catalog sits below it.
  EXPECT_LT(state->segments().size(), policy.merge_trigger_segments);
  EXPECT_EQ(state->stats().num_live_docs, 60u);
}

// The satellite-3 regression: background flush/merge racing foreground
// mutations must never tear state (run under TSan via the ctest `tsan`
// label; the assertions also catch logical races in any mode).
TEST(BackgroundJobsTest, ConcurrentMutationsAndJobsStayConsistent) {
  const std::string dir = FreshDir("race");
  auto catalog = IndexCatalog::Create(InDir(dir));
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();

  MaintenancePolicy policy;
  policy.flush_trigger_docs = 4;
  policy.merge_trigger_segments = 3;
  policy.merge_fanin = 2;
  BackgroundMaintenance maintenance(&c, policy);

  constexpr int kThreads = 4;
  constexpr int kDocsPerThread = 40;
  std::atomic<uint32_t> deletes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kDocsPerThread; ++i) {
        auto id = c.AddDocument(Doc(static_cast<uint32_t>(t * 100 + i)));
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        if (i % 5 == 0) {
          // Deleting our own freshly-acknowledged id: may race a merge
          // that compacted it away — both outcomes are legal, torn state
          // is not.
          const Status s = c.DeleteDocument(id.ValueOrDie());
          if (s.ok()) deletes.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  maintenance.WaitIdle();
  EXPECT_TRUE(maintenance.TakeLastError().ok());

  // Deletes racing merges may target an id the merge already remapped;
  // those fail cleanly (NotFound / InvalidArgument) and the doc stays
  // live. Only successful deletes reduce the live count.
  auto state = c.Snapshot();
  EXPECT_EQ(state->stats().num_live_docs,
            static_cast<uint64_t>(kThreads * kDocsPerThread) - deletes.load());

  // And the whole thing recovers from disk to the same live count.
  auto reopened = IndexCatalog::Open(InDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.ValueOrDie()->Snapshot()->stats().num_live_docs,
            state->stats().num_live_docs);
}

TEST(BackgroundJobsTest, BackpressureBlocksUntilFlushCatchesUp) {
  const std::string dir = FreshDir("backpressure_block");
  IndexCatalog::Options options = InDir(dir);
  options.backpressure_memtable_docs = 8;
  auto catalog = IndexCatalog::Create(options);
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();

  MaintenancePolicy policy;
  policy.flush_trigger_docs = 4;
  policy.merge_trigger_segments = 0;
  BackgroundMaintenance maintenance(&c, policy);

  // Far more documents than the budget: writers must block-and-resume
  // rather than fail — every add is eventually acknowledged.
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(c.AddDocument(Doc(i)).ok());
  }
  maintenance.WaitIdle();
  EXPECT_EQ(c.Snapshot()->stats().num_live_docs, 50u);
}

TEST(BackgroundJobsTest, BackpressureSoftFailReturnsResourceExhausted) {
  const std::string dir = FreshDir("backpressure_soft");
  IndexCatalog::Options options = InDir(dir);
  options.backpressure_memtable_docs = 4;
  options.backpressure_soft_fail = true;
  auto catalog = IndexCatalog::Create(options);
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();

  // A maintenance loop that never actually runs jobs (trigger far above
  // the budget) keeps the debt in place so the soft failure is
  // deterministic.
  MaintenancePolicy policy;
  policy.flush_trigger_docs = 1000;
  policy.merge_trigger_segments = 0;
  BackgroundMaintenance maintenance(&c, policy);

  uint32_t accepted = 0;
  Status last;
  for (uint32_t i = 0; i < 10; ++i) {
    auto id = c.AddDocument(Doc(i));
    if (id.ok()) {
      ++accepted;
    } else {
      last = id.status();
    }
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  // Deletes are exempt (they shrink the live set).
  EXPECT_TRUE(c.DeleteDocument(0).ok());
}

TEST(BackgroundJobsTest, BackpressureInactiveWithoutMaintenance) {
  // Without an observer the budget must not gate writers — nothing would
  // ever drain the debt.
  IndexCatalog::Options options;
  options.num_terms = kVocab;
  options.backpressure_memtable_docs = 2;
  options.backpressure_soft_fail = true;
  auto catalog = IndexCatalog::Create(options);
  ASSERT_TRUE(catalog.ok());
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(catalog.ValueOrDie()->AddDocument(Doc(i)).ok());
  }
}

TEST(BackgroundJobsTest, RateLimitDefersButNeverLosesTriggers) {
  const std::string dir = FreshDir("rate_limit");
  auto catalog = IndexCatalog::Create(InDir(dir));
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();

  MaintenancePolicy policy;
  policy.flush_trigger_docs = 2;
  policy.merge_trigger_segments = 0;
  policy.min_interval_millis = 3600 * 1000;  // effectively "once"
  BackgroundMaintenance maintenance(&c, policy);

  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(c.AddDocument(Doc(i)).ok());
  }
  // WaitIdle ignores the rate limit, so the deferred trigger drains.
  maintenance.WaitIdle();
  EXPECT_TRUE(maintenance.TakeLastError().ok());
  EXPECT_LT(c.Snapshot()->memtable().num_docs(), 2u);
}

TEST(BackgroundJobsTest, DestructorDetachesCleanly) {
  const std::string dir = FreshDir("detach");
  auto catalog = IndexCatalog::Create(InDir(dir));
  ASSERT_TRUE(catalog.ok());
  auto& c = *catalog.ValueOrDie();
  {
    MaintenancePolicy policy;
    policy.flush_trigger_docs = 2;
    BackgroundMaintenance maintenance(&c, policy);
    for (uint32_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(c.AddDocument(Doc(i)).ok());
    }
    // Destructor: detach observer, drain the in-flight job.
  }
  // After detach, writes flow without any observer (and without
  // backpressure), and no job fires.
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.AddDocument(Doc(100 + i)).ok());
  }
  EXPECT_EQ(c.Snapshot()->stats().num_live_docs, 20u);
}

TEST(BackgroundJobsTest, ShardedCatalogMaintenanceInvalidatesSnapshots) {
  const std::string dir = FreshDir("sharded");
  ShardedCatalog::Options soptions;
  soptions.num_shards = 2;
  soptions.shard = InDir(dir);
  auto sharded = ShardedCatalog::Create(soptions);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  auto& sc = *sharded.ValueOrDie();

  MaintenancePolicy policy;
  policy.flush_trigger_docs = 4;
  policy.merge_trigger_segments = 3;
  policy.merge_fanin = 2;
  std::vector<std::unique_ptr<BackgroundMaintenance>> loops;
  for (size_t s = 0; s < sc.num_shards(); ++s) {
    loops.push_back(std::make_unique<BackgroundMaintenance>(
        &sc.shard(s), policy, [&sc] { sc.InvalidateSnapshotCache(); }));
  }

  for (uint32_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(sc.AddDocument(Doc(i)).ok());
  }
  for (auto& loop : loops) loop->WaitIdle();
  for (auto& loop : loops) EXPECT_TRUE(loop->TakeLastError().ok());

  // The snapshot taken *after* background maintenance reflects the
  // maintained shards — the invalidation hook dropped the stale cache.
  auto snapshot = sc.Snapshot();
  EXPECT_EQ(snapshot->stats().num_live_docs, 40u);
  uint64_t memtable_docs = 0;
  for (size_t s = 0; s < sc.num_shards(); ++s) {
    memtable_docs += snapshot->shard_state(s).memtable().num_docs();
  }
  EXPECT_LT(memtable_docs, 2 * policy.flush_trigger_docs);
  loops.clear();
}

}  // namespace
}  // namespace moa
