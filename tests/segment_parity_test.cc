// Acceptance test for the compressed segment storage: retrieval over the
// mmap-backed MOAIF02 index must be *bit-identical* to retrieval over the
// in-memory index, for every registered strategy, sequentially and under
// SearchBatch concurrency (the cursor path shares the SparseIndexCache
// with the in-memory path, so this doubles as a TSan target).
//
// Two databases opened from the same config hold identical collections;
// one of them executes over a segment written by the other. A third check
// round-trips the file *through* the segment (ToInvertedFile) and runs
// every strategy over the decoded copy via the registry directly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "exec/registry.h"
#include "ir/query_gen.h"
#include "storage/segment/segment_reader.h"

namespace moa {
namespace {

DatabaseConfig TestConfig() {
  DatabaseConfig config;
  config.collection.num_docs = 1500;
  config.collection.vocabulary = 2500;
  config.collection.mean_doc_length = 100;
  config.collection.seed = 74755;
  config.fragmentation.small_volume_fraction = 0.05;
  return config;
}

class SegmentParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto in_memory = MmDatabase::Open(TestConfig());
    ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
    in_memory_ = std::move(in_memory).ValueOrDie().release();

    segment_path_ =
        new std::string(std::string(::testing::TempDir()) + "/parity.moaseg");
    ASSERT_TRUE(in_memory_->SaveSegment(*segment_path_).ok());

    auto mapped = MmDatabase::Open(TestConfig());
    ASSERT_TRUE(mapped.ok());
    mapped_ = std::move(mapped).ValueOrDie().release();
    Status attached = mapped_->AttachSegment(*segment_path_);
    ASSERT_TRUE(attached.ok()) << attached.ToString();

    QueryWorkloadConfig qconfig;
    qconfig.num_queries = 24;
    qconfig.terms_per_query = 4;
    qconfig.distribution = QueryTermDistribution::kMixed;
    qconfig.seed = 4242;
    queries_ = new std::vector<Query>(
        GenerateQueries(in_memory_->collection(), qconfig).ValueOrDie());
  }

  static MmDatabase* in_memory_;
  static MmDatabase* mapped_;
  static std::vector<Query>* queries_;
  static std::string* segment_path_;
};

MmDatabase* SegmentParityTest::in_memory_ = nullptr;
MmDatabase* SegmentParityTest::mapped_ = nullptr;
std::vector<Query>* SegmentParityTest::queries_ = nullptr;
std::string* SegmentParityTest::segment_path_ = nullptr;

void ExpectIdenticalTopN(const TopNResult& a, const TopNResult& b,
                         const char* label) {
  ASSERT_EQ(a.items.size(), b.items.size()) << label;
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].doc, b.items[i].doc) << label << " rank " << i;
    // Bit-identical, not approximately equal: the cursor path must run
    // the exact same float operations in the same order.
    EXPECT_EQ(a.items[i].score, b.items[i].score) << label << " rank " << i;
  }
}

TEST_F(SegmentParityTest, SegmentIsAttached) {
  ASSERT_TRUE(mapped_->has_segment());
  EXPECT_TRUE(mapped_->segment()->has_impacts());
  EXPECT_TRUE(mapped_->segment()->CheckIntegrity().ok());
  // The strategy sweep below must exercise the *lazy* impact-order path:
  // SaveSegment writes the MOAFRG01 sidecar, so the Fagin/champion
  // accesses run over the fragment directory, not the single-fragment
  // fallback.
  EXPECT_TRUE(mapped_->segment()->has_fragment_directory());
  EXPECT_FALSE(in_memory_->has_segment());
}

TEST_F(SegmentParityTest, EveryStrategyMatchesBitForBitOverMmap) {
  for (PhysicalStrategy s : AllStrategies()) {
    SearchOptions opts;
    opts.n = 10;
    opts.safe_only = false;
    opts.force = s;
    for (const Query& q : *queries_) {
      auto expected = in_memory_->Search(q, opts);
      auto actual = mapped_->Search(q, opts);
      ASSERT_TRUE(expected.ok()) << StrategyName(s);
      ASSERT_TRUE(actual.ok()) << StrategyName(s) << ": "
                               << actual.status().ToString();
      EXPECT_EQ(expected.ValueOrDie().strategy, actual.ValueOrDie().strategy);
      ExpectIdenticalTopN(expected.ValueOrDie().top, actual.ValueOrDie().top,
                          StrategyName(s));
    }
  }
}

TEST_F(SegmentParityTest, SearchBatchOverMmapMatchesSequentialInMemory) {
  // search_batch_test's contract, now with the batch side reading
  // compressed blocks out of the mapping from 4 worker threads.
  for (PhysicalStrategy s : AllStrategies()) {
    SearchOptions opts;
    opts.n = 10;
    opts.safe_only = false;
    opts.force = s;

    std::vector<SearchResult> sequential;
    for (const Query& q : *queries_) {
      auto r = in_memory_->Search(q, opts);
      ASSERT_TRUE(r.ok()) << StrategyName(s);
      sequential.push_back(std::move(r).ValueOrDie());
    }
    auto batch = mapped_->SearchBatch(*queries_, opts, 4);
    ASSERT_TRUE(batch.ok()) << StrategyName(s) << ": "
                            << batch.status().ToString();
    ASSERT_EQ(batch.ValueOrDie().results.size(), queries_->size());
    for (size_t i = 0; i < queries_->size(); ++i) {
      ExpectIdenticalTopN(sequential[i].top,
                          batch.ValueOrDie().results[i].top, StrategyName(s));
    }
  }
}

TEST_F(SegmentParityTest, PlannerChosenSearchMatchesOverMmap) {
  // Storage-aware planning may legitimately pick different strategies
  // over the mapped segment than over the in-memory file (the segment's
  // decode and access-path signals shift the cost ranking — that is the
  // point of the planner). The parity contract: whatever safe strategy
  // the planner picks over the mapping must be bit-identical to the same
  // strategy over the in-memory file.
  SearchOptions opts;
  opts.n = 10;
  for (const Query& q : *queries_) {
    auto actual = mapped_->Search(q, opts);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_TRUE(actual.ValueOrDie().planned);
    EXPECT_TRUE(IsSafeStrategy(actual.ValueOrDie().strategy))
        << StrategyName(actual.ValueOrDie().strategy);
    auto expected =
        in_memory_->Execute(actual.ValueOrDie().strategy, q, opts.n);
    ASSERT_TRUE(expected.ok());
    ExpectIdenticalTopN(expected.ValueOrDie(), actual.ValueOrDie().top,
                        "planner");
  }
}

TEST_F(SegmentParityTest, DecodedSegmentDrivesEveryStrategyViaRegistry) {
  // Full round trip through the compressed format: decode the segment
  // back into an InvertedFile, rebuild model + impacts + fragmentation on
  // the decoded copy, and run every strategy through the registry. The
  // decoded index must be indistinguishable from the original.
  auto reader = SegmentReader::Open(*segment_path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto decoded = reader.ValueOrDie()->ToInvertedFile();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  InvertedFile file = std::move(decoded).ValueOrDie();
  auto model = MakeBm25(&file);
  file.BuildImpactOrders(
      [&](TermId t, const Posting& p) { return model->Weight(t, p); });
  Fragmentation fragmentation =
      Fragmentation::Build(file, TestConfig().fragmentation);
  SparseIndexCache cache;

  ExecContext context;
  context.file = &file;
  context.model = model.get();
  context.fragmentation = &fragmentation;
  context.sparse_cache = &cache;

  for (PhysicalStrategy s : AllStrategies()) {
    for (const Query& q : *queries_) {
      auto expected = in_memory_->Execute(s, q, 10);
      auto actual =
          StrategyRegistry::Global().Execute(s, context, q, 10, ExecOptions{});
      ASSERT_TRUE(expected.ok()) << StrategyName(s);
      ASSERT_TRUE(actual.ok()) << StrategyName(s) << ": "
                               << actual.status().ToString();
      ExpectIdenticalTopN(expected.ValueOrDie(), actual.ValueOrDie(),
                          StrategyName(s));
    }
  }
}

TEST_F(SegmentParityTest, AttachRejectsMismatchedSegment) {
  DatabaseConfig other = TestConfig();
  other.collection.num_docs = 500;
  auto db = MmDatabase::Open(other);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(db.ValueOrDie()->AttachSegment(*segment_path_).ok());
  EXPECT_FALSE(db.ValueOrDie()->has_segment());
}

TEST_F(SegmentParityTest, AttachRejectsPayloadBitRot) {
  // One flipped payload byte is invisible to the structural validation in
  // SegmentReader::Open; without the attach-time integrity pass it would
  // silently truncate a posting list and serve wrong top-N results.
  const std::string path =
      std::string(::testing::TempDir()) + "/rot.moaseg";
  std::filesystem::copy_file(
      *segment_path_, path,
      std::filesystem::copy_options::overwrite_existing);
  SegmentHeader header{};
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.read(reinterpret_cast<char*>(&header), sizeof(header));
  const SegmentLayout layout(header);
  fs.seekg(static_cast<std::streamoff>(layout.payload + 3));
  char byte = 0;
  fs.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  fs.seekp(static_cast<std::streamoff>(layout.payload + 3));
  fs.write(&byte, 1);
  fs.close();

  auto db = MmDatabase::Open(TestConfig());
  ASSERT_TRUE(db.ok());
  Status attached = db.ValueOrDie()->AttachSegment(path);
  EXPECT_EQ(attached.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(db.ValueOrDie()->has_segment());

  // Skipping the payload scan is an explicit, documented opt-out for
  // trusted segments — the corrupt file then attaches structurally.
  AttachSegmentOptions skip;
  skip.verify_payload = false;
  EXPECT_TRUE(db.ValueOrDie()->AttachSegment(path, skip).ok());
  std::remove(path.c_str());
}

TEST_F(SegmentParityTest, AttachRejectsDifferentScoringModel) {
  // Same collection, different scoring model: the segment's stored
  // max_impact bounds were computed under BM25 and would be unsafe for
  // max-score pruning under the language model — attach must refuse.
  DatabaseConfig other = TestConfig();
  other.scoring = ScoringModelKind::kLanguageModel;
  auto db = MmDatabase::Open(other);
  ASSERT_TRUE(db.ok());
  Status attached = db.ValueOrDie()->AttachSegment(*segment_path_);
  EXPECT_EQ(attached.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(db.ValueOrDie()->has_segment());
}

}  // namespace
}  // namespace moa
