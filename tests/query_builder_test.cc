#include "engine/query_builder.h"

#include <gtest/gtest.h>

#include "algebra/evaluator.h"

namespace moa {
namespace {

TEST(QueryBuilderTest, PaperExample1Expression) {
  ExprPtr e = QueryBuilder::List({1, 2, 3, 4, 4, 5})
                  .ProjectToBag()
                  .Select(2, 4)
                  .Build();
  EXPECT_EQ(e->op(), "BAG.select");
  Value v = Evaluate(e).ValueOrDie();
  EXPECT_TRUE(Value::BagEquals(
      v, Value::Bag({Value::Int(2), Value::Int(3), Value::Int(4),
                     Value::Int(4)})));
}

TEST(QueryBuilderTest, ChainTracksKind) {
  QueryBuilder b = QueryBuilder::List({3, 1, 2});
  EXPECT_EQ(b.kind(), ValueKind::kList);
  QueryBuilder bag = std::move(b).ProjectToBag();
  EXPECT_EQ(bag.kind(), ValueKind::kBag);
  QueryBuilder back = std::move(bag).ProjectToList();
  EXPECT_EQ(back.kind(), ValueKind::kList);
}

TEST(QueryBuilderTest, SortTopNPipeline) {
  ExprPtr e = QueryBuilder::List({5, 2, 9, 1}).Sort().TopN(2).Build();
  Value v = Evaluate(e).ValueOrDie();
  EXPECT_EQ(v, Value::List({Value::Int(9), Value::Int(5)}));
}

TEST(QueryBuilderTest, SelectDispatchesOnKind) {
  ExprPtr list_select = QueryBuilder::List({1, 2, 3}).Select(2, 3).Build();
  EXPECT_EQ(list_select->op(), "LIST.select");
  ExprPtr bag_select =
      QueryBuilder::List({1, 2, 3}).ProjectToBag().Select(2, 3).Build();
  EXPECT_EQ(bag_select->op(), "BAG.select");
}

TEST(QueryBuilderTest, ToSetAndCount) {
  ExprPtr e = QueryBuilder::List({1, 1, 2, 2, 3}).ToSet().Count().Build();
  EXPECT_EQ(Evaluate(e).ValueOrDie().AsInt(), 3);
}

TEST(QueryBuilderTest, DoublesAndSum) {
  ExprPtr e = QueryBuilder::ListOf({0.5, 1.5, 2.0}).Sum().Build();
  EXPECT_DOUBLE_EQ(Evaluate(e).ValueOrDie().AsDouble(), 4.0);
}

TEST(QueryBuilderTest, SliceReverse) {
  ExprPtr e =
      QueryBuilder::List({1, 2, 3, 4}).Reverse().Slice(1, 2).Build();
  Value v = Evaluate(e).ValueOrDie();
  EXPECT_EQ(v, Value::List({Value::Int(3), Value::Int(2)}));
}

TEST(QueryBuilderTest, SelectSortedOnSortedLiteral) {
  ExprPtr e = QueryBuilder::List({1, 2, 3, 4, 5}).SelectSorted(2, 4).Build();
  Value v = Evaluate(e).ValueOrDie();
  EXPECT_EQ(v, Value::List({Value::Int(2), Value::Int(3), Value::Int(4)}));
}

}  // namespace
}  // namespace moa
