// ShardedCatalog + ShardCoordinator acceptance suite.
//
// Covers the sharded storage contract from the bottom up: the global/local
// id interleaving, least-loaded routing (identity ids from a pristine
// catalog), consistent multi-shard snapshots aggregating global
// statistics, the snapshot-owned per-(shard, term) bound cache, the
// coordinator's bound-ordered visiting with strict-below-n-th shard
// skipping (exact skipped-work accounting in CostCounters), durability
// through per-shard MANIFESTs, and — at the engine level — that an
// MmDatabase serving N shards answers bit-identically to an unsharded
// database given the same lifecycle (safe strategies; fagin_nra is
// set-level because its partial lower bounds are partition-dependent).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/shard_coordinator.h"
#include "exec/registry.h"
#include "ir/exact_eval.h"
#include "storage/catalog/sharded_catalog.h"

namespace moa {
namespace {

constexpr uint32_t kVocab = 300;
constexpr size_t kTopN = 10;

DocTerms SynthDoc(Rng& rng) {
  std::map<TermId, uint32_t> terms;
  const size_t want = 6 + rng.Uniform(8);
  while (terms.size() < want) {
    terms.emplace(static_cast<TermId>(rng.Uniform(kVocab)),
                  1 + static_cast<uint32_t>(rng.Uniform(4)));
  }
  return DocTerms(terms.begin(), terms.end());
}

TEST(ShardedCatalogTest, IdMappingRoundTrips) {
  for (const size_t shards : {1u, 2u, 3u, 4u, 7u}) {
    for (DocId global = 0; global < 100; ++global) {
      const size_t s = ShardedCatalog::ShardOf(global, shards);
      const DocId local = ShardedCatalog::LocalOf(global, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(ShardedCatalog::GlobalOf(local, s, shards), global);
    }
    // Distinct (shard, local) pairs map to distinct globals.
    for (size_t s = 0; s < shards; ++s) {
      for (DocId local = 0; local < 8; ++local) {
        const DocId g = ShardedCatalog::GlobalOf(local, s, shards);
        EXPECT_EQ(ShardedCatalog::ShardOf(g, shards), s);
        EXPECT_EQ(ShardedCatalog::LocalOf(g, shards), local);
      }
    }
  }
}

TEST(ShardedCatalogTest, PristineRoutingAssignsIdentityIds) {
  ShardedCatalog::Options options;
  options.num_shards = 3;
  options.shard.num_terms = kVocab;
  auto created = ShardedCatalog::Create(options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedCatalog& catalog = *created.ValueOrDie();

  // Least-loaded routing from empty degenerates to round-robin: a seed
  // batch gets the identity ids 0..k-1, exactly like a single catalog.
  Rng rng(41);
  std::vector<DocTerms> batch;
  for (int i = 0; i < 7; ++i) batch.push_back(SynthDoc(rng));
  auto ids = catalog.AddDocuments(batch);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids.ValueOrDie().size(), 7u);
  for (DocId k = 0; k < 7; ++k) EXPECT_EQ(ids.ValueOrDie()[k], k);

  // Doc spaces are 3/2/2 — the next two adds fill shards 1 then 2
  // (smallest doc space, ties to the lowest index), i.e. globals 7, 8.
  auto next = catalog.AddDocument(SynthDoc(rng));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.ValueOrDie(), 7u);
  next = catalog.AddDocument(SynthDoc(rng));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.ValueOrDie(), 8u);

  // Deletes tombstone but keep the slot: routing is by doc *space*, so
  // the id sequence keeps interleaving regardless of tombstones.
  ASSERT_TRUE(catalog.DeleteDocument(0).ok());
  next = catalog.AddDocument(SynthDoc(rng));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.ValueOrDie(), 9u);
}

TEST(ShardedCatalogTest, SnapshotAggregatesGlobalStats) {
  ShardedCatalog::Options options;
  options.num_shards = 2;
  options.shard.num_terms = kVocab;
  auto created = ShardedCatalog::Create(options);
  ASSERT_TRUE(created.ok());
  ShardedCatalog& catalog = *created.ValueOrDie();

  // Doc 0 -> shard 0, doc 1 -> shard 1: term 5 spans both shards.
  ASSERT_TRUE(catalog.AddDocument({{5, 2}, {9, 1}}).ok());
  ASSERT_TRUE(catalog.AddDocument({{5, 1}, {11, 3}}).ok());
  auto snap = catalog.Snapshot();
  EXPECT_EQ(snap->num_shards(), 2u);
  EXPECT_EQ(snap->stats().num_live_docs, 2u);
  EXPECT_EQ(snap->stats().df[5], 2u);
  EXPECT_EQ(snap->stats().df[9], 1u);
  EXPECT_EQ(snap->stats().df[11], 1u);
  EXPECT_EQ(snap->stats().cf[5], 3);
  EXPECT_EQ(snap->stats().total_live_tokens, 2 + 1 + 1 + 3);
  EXPECT_EQ(snap->doc_space(), 2u);

  // Global-id document access routes to the owning shard.
  EXPECT_EQ(snap->DocLength(0), 3u);
  EXPECT_EQ(snap->DocLength(1), 4u);
  EXPECT_FALSE(snap->IsDeleted(0));
  ASSERT_TRUE(snap->FindTf(11, 1).has_value());
  EXPECT_EQ(*snap->FindTf(11, 1), 3u);
  EXPECT_FALSE(snap->FindTf(11, 0).has_value());
  EXPECT_EQ(snap->LiveDocIds(), (std::vector<DocId>{0, 1}));

  // Versions are strictly monotone across mutations; the per-shard read
  // view reports the *global* df even where the shard's list is shorter.
  const uint64_t v0 = snap->version();
  ASSERT_TRUE(catalog.DeleteDocument(1).ok());
  auto snap2 = catalog.Snapshot();
  EXPECT_GT(snap2->version(), v0);
  EXPECT_EQ(snap2->stats().num_live_docs, 1u);
  EXPECT_EQ(snap2->stats().df[11], 0u);
  EXPECT_TRUE(snap2->IsDeleted(1));
  EXPECT_EQ(snap2->shard_source(0).DocFrequency(5), 1u);
  EXPECT_EQ(snap2->shard_source(1).DocFrequency(5), 1u);

  // The first snapshot is unaffected (snapshot-per-query isolation).
  EXPECT_EQ(snap->stats().num_live_docs, 2u);
}

TEST(ShardedCatalogTest, UpdateDocumentMovesDocToFreshTailId) {
  ShardedCatalog::Options options;
  options.num_shards = 2;
  options.shard.num_terms = kVocab;
  auto created = ShardedCatalog::Create(options);
  ASSERT_TRUE(created.ok());
  ShardedCatalog& catalog = *created.ValueOrDie();
  Rng rng(43);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(catalog.AddDocument(SynthDoc(rng)).ok());
  }

  const DocTerms replacement{{7, 5}};
  auto updated = catalog.UpdateDocument(1, replacement);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  const DocId fresh = updated.ValueOrDie();
  EXPECT_EQ(fresh, 4u);  // balanced spaces -> shard 0, local 2 -> global 4
  auto snap = catalog.Snapshot();
  EXPECT_TRUE(snap->IsDeleted(1));
  EXPECT_EQ(snap->TermsOf(fresh), replacement);
  EXPECT_EQ(snap->stats().num_live_docs, 4u);

  // Upserting a dead id fails without re-adding.
  EXPECT_FALSE(catalog.UpdateDocument(1, replacement).ok());
  EXPECT_EQ(catalog.Snapshot()->stats().num_live_docs, 4u);
}

// Four shards, one query term concentrated in shard 0 (high weight) with a
// weak echo in shard 1: sequential bound-ordered visiting must answer from
// shard 0 alone and account the three pruned shards — including the one
// posting shard 1 would have streamed.
TEST(ShardedCatalogTest, CoordinatorSkipsShardsBelowTheNthBound) {
  ShardedCatalog::Options options;
  options.num_shards = 4;
  options.shard.num_terms = kVocab;
  auto created = ShardedCatalog::Create(options);
  ASSERT_TRUE(created.ok());
  ShardedCatalog& catalog = *created.ValueOrDie();

  constexpr TermId kTerm = 7;
  // Round-robin placement from empty: docs 0..3 land on shards 0..3.
  ASSERT_TRUE(catalog.AddDocument({{kTerm, 4}}).ok());              // shard 0
  ASSERT_TRUE(
      catalog.AddDocument({{kTerm, 1}, {1, 1}, {2, 1}, {3, 1}}).ok());  // 1
  ASSERT_TRUE(catalog.AddDocument({{1, 2}, {2, 1}}).ok());          // shard 2
  ASSERT_TRUE(catalog.AddDocument({{2, 2}, {3, 1}}).ok());          // shard 3
  auto snap = catalog.Snapshot();

  // Bound cache: zero where the shard has no live posting, and the
  // higher-tf/shorter doc dominates. Query bounds are per-term sums.
  const double b0 = snap->ShardTermBound(0, kTerm);
  const double b1 = snap->ShardTermBound(1, kTerm);
  EXPECT_GT(b0, b1);
  EXPECT_GT(b1, 0.0);
  EXPECT_EQ(snap->ShardTermBound(2, kTerm), 0.0);
  EXPECT_EQ(snap->ShardTermBound(3, kTerm), 0.0);
  const Query two_terms{{kTerm, 1}};
  EXPECT_DOUBLE_EQ(snap->ShardQueryBound(1, two_terms),
                   snap->ShardTermBound(1, kTerm) +
                       snap->ShardTermBound(1, 1));

  const Query q{{kTerm}};
  ShardCoordinator::Options copts;
  copts.parallelism = 1;  // sequential visiting maximizes skips
  auto result =
      ShardCoordinator::Execute(snap, PhysicalStrategy::kHeap, q, 1,
                                ExecOptions{}, copts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TopNResult& top = result.ValueOrDie();
  ASSERT_EQ(top.items.size(), 1u);
  EXPECT_EQ(top.items[0].doc, 0u);
  EXPECT_GT(top.items[0].score, 0.0);
  // Shard 0's single exact score *is* its bound; every other bound is
  // strictly below it, so the remaining three shards are pruned and the
  // one posting shard 1 held for the term is the skipped work.
  EXPECT_EQ(top.stats.cost.shards_visited, 1);
  EXPECT_EQ(top.stats.cost.shards_skipped, 3);
  EXPECT_EQ(top.stats.cost.shard_postings_skipped, 1);
  EXPECT_TRUE(top.stats.stopped_early);

  // A full-width wave visits everything at once: no skip opportunity.
  copts.parallelism = 4;
  result = ShardCoordinator::Execute(snap, PhysicalStrategy::kHeap, q, 1,
                                     ExecOptions{}, copts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().stats.cost.shards_visited, 4);
  EXPECT_EQ(result.ValueOrDie().stats.cost.shards_skipped, 0);
  EXPECT_EQ(result.ValueOrDie().items[0].doc, 0u);
}

TEST(ShardedCatalogTest, DurableShardsRecoverAcrossReopen) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/sharded_catalog_durable";
  std::filesystem::remove_all(dir);
  ShardedCatalog::Options options;
  options.num_shards = 3;
  options.shard.num_terms = kVocab;
  options.shard.dir = dir;

  Rng rng(44);
  std::vector<DocId> live_before;
  CatalogStats stats_before(kVocab);
  {
    auto created = ShardedCatalog::Create(options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ShardedCatalog& catalog = *created.ValueOrDie();
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(catalog.AddDocument(SynthDoc(rng)).ok());
    }
    ASSERT_TRUE(catalog.DeleteDocument(4).ok());
    ASSERT_TRUE(catalog.FlushAll().ok());
    for (size_t s = 0; s < 3; ++s) {
      EXPECT_TRUE(std::filesystem::exists(dir + "/shard_" +
                                          std::to_string(s) + "/MANIFEST"));
    }
    auto merged = catalog.Merge(/*shard=*/1);
    ASSERT_TRUE(merged.ok());
    const auto snap = catalog.Snapshot();
    live_before = snap->LiveDocIds();
    stats_before = snap->stats();
  }

  // Create refuses a directory that already holds shard manifests.
  EXPECT_FALSE(ShardedCatalog::Create(options).ok());

  auto reopened = ShardedCatalog::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto snap = reopened.ValueOrDie()->Snapshot();
  EXPECT_EQ(snap->LiveDocIds(), live_before);
  EXPECT_EQ(snap->stats().num_live_docs, stats_before.num_live_docs);
  EXPECT_EQ(snap->stats().df, stats_before.df);
  EXPECT_EQ(snap->stats().cf, stats_before.cf);
  EXPECT_EQ(snap->stats().total_live_tokens, stats_before.total_live_tokens);
}

// ---------------------------------------------------------------------------
// Engine-level parity: the same lifecycle against an unsharded database
// and against num_shards in {2, 4}. The lifecycle keeps the id spaces
// aligned (a balanced seed gets identity ids; adds stay interleaved and
// deletes do not move doc spaces; flush is id-stable; no merges), so safe
// strategies must agree doc-for-doc and bit-for-bit on scores — except
// that ranks tying the returned n-th score may legally swap equal-scored
// docs (the distributed max-score threshold prunes ties).

DatabaseConfig ShardedConfig(const std::string& dir, size_t num_shards) {
  DatabaseConfig config;
  config.collection.num_docs = 120;
  config.collection.vocabulary = kVocab;
  config.collection.mean_doc_length = 50;
  config.collection.seed = 880022;
  config.catalog_dir = dir;
  config.num_shards = num_shards;
  return config;
}

/// Applies the shared id-space-aligned lifecycle to one database.
void RunAlignedLifecycle(MmDatabase& db) {
  Rng rng(0xA11C);
  std::vector<DocId> added;
  for (int i = 0; i < 12; ++i) {
    auto id = db.AddDocument(SynthDoc(rng));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    added.push_back(id.ValueOrDie());
  }
  ASSERT_TRUE(db.DeleteDocument(3).ok());
  ASSERT_TRUE(db.DeleteDocument(77).ok());
  ASSERT_TRUE(db.DeleteDocument(added[5]).ok());
  auto updated = db.UpdateDocument(10, SynthDoc(rng));
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  ASSERT_TRUE(db.Flush().ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(db.AddDocument(SynthDoc(rng)).ok());
  }
  ASSERT_TRUE(db.DeleteDocument(50).ok());
}

void ExpectShardedParity(const TopNResult& ref, const TopNResult& got,
                         size_t n, const char* label) {
  ASSERT_EQ(ref.items.size(), got.items.size()) << label;
  for (size_t i = 0; i < ref.items.size(); ++i) {
    EXPECT_EQ(got.items[i].score, ref.items[i].score)
        << label << " rank " << i;
  }
  const bool full = got.items.size() == n;
  for (size_t i = 0; i < ref.items.size(); ++i) {
    if (full && ref.items[i].score == ref.items.back().score) continue;
    EXPECT_EQ(got.items[i].doc, ref.items[i].doc) << label << " rank " << i;
  }
}

TEST(ShardedCatalogTest, EngineShardedSearchMatchesUnsharded) {
  const std::string base =
      std::string(::testing::TempDir()) + "/sharded_engine_parity";
  std::filesystem::remove_all(base + "_1");
  auto opened = MmDatabase::Open(ShardedConfig(base + "_1", 1));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  MmDatabase& reference = *opened.ValueOrDie();
  RunAlignedLifecycle(reference);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_NE(reference.catalog(), nullptr);
  ASSERT_EQ(reference.sharded_catalog(), nullptr);

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 10;
  qconfig.terms_per_query = 3;
  qconfig.distribution = QueryTermDistribution::kMixed;
  qconfig.seed = 6161;
  const std::vector<Query> queries =
      GenerateQueries(reference.collection(), qconfig).ValueOrDie();

  for (const size_t shards : {2u, 4u}) {
    SCOPED_TRACE("num_shards " + std::to_string(shards));
    const std::string dir = base + "_" + std::to_string(shards);
    std::filesystem::remove_all(dir);
    auto sharded_open = MmDatabase::Open(ShardedConfig(dir, shards));
    ASSERT_TRUE(sharded_open.ok()) << sharded_open.status().ToString();
    MmDatabase& db = *sharded_open.ValueOrDie();
    RunAlignedLifecycle(db);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_EQ(db.catalog(), nullptr);
    ASSERT_NE(db.sharded_catalog(), nullptr);
    EXPECT_EQ(db.sharded_catalog()->num_shards(), shards);

    // The aligned lifecycle keeps the live id sets equal.
    ASSERT_EQ(db.sharded_catalog()->Snapshot()->LiveDocIds(),
              reference.catalog()->Snapshot()->LiveDocIds());

    for (const Query& q : queries) {
      // Exact ground truth is id-aligned, so it must match exactly.
      const auto truth = reference.GroundTruth(q, kTopN);
      const auto sharded_truth = db.GroundTruth(q, kTopN);
      ASSERT_EQ(truth.size(), sharded_truth.size());
      for (size_t i = 0; i < truth.size(); ++i) {
        EXPECT_EQ(truth[i], sharded_truth[i]) << "ground truth rank " << i;
      }

      for (PhysicalStrategy s : AllStrategies()) {
        if (!IsSafeStrategy(s)) continue;  // per-shard pruning diverges
        auto expected = reference.Execute(s, q, kTopN);
        auto actual = db.Execute(s, q, kTopN);
        ASSERT_TRUE(expected.ok()) << StrategyName(s);
        ASSERT_TRUE(actual.ok())
            << StrategyName(s) << ": " << actual.status().ToString();
        if (s == PhysicalStrategy::kFaginNRA) {
          // Set-level: merged partial lower bounds are partition-
          // dependent, but membership in the exact top-N is not.
          const std::vector<double> scores = reference.GroundTruthScores(q);
          ASSERT_EQ(actual.ValueOrDie().items.size(), truth.size())
              << StrategyName(s);
          for (const ScoredDoc& sd : actual.ValueOrDie().items) {
            ASSERT_LT(sd.doc, scores.size());
            EXPECT_GE(scores[sd.doc] + 1e-9, truth.back().score)
                << StrategyName(s) << " doc " << sd.doc;
          }
          continue;
        }
        ExpectShardedParity(expected.ValueOrDie(), actual.ValueOrDie(),
                            kTopN, StrategyName(s));
      }

      // Planner-driven Search stays safe and exact. Each shard plans for
      // itself, and different safe strategies accumulate float sums in
      // different orders, so the check is against exact ground truth with
      // an epsilon rather than bitwise against any one strategy.
      QueryRequest request;
      request.query = q;
      request.n = kTopN;
      auto planned = db.Search(request);
      ASSERT_TRUE(planned.ok()) << planned.status().ToString();
      EXPECT_TRUE(planned.ValueOrDie().planned);
      EXPECT_TRUE(IsSafeStrategy(planned.ValueOrDie().strategy));
      const std::vector<ScoredDoc>& planned_items =
          planned.ValueOrDie().top.items;
      const std::vector<double> exact = reference.GroundTruthScores(q);
      ASSERT_EQ(planned_items.size(), truth.size());
      for (const ScoredDoc& sd : planned_items) {
        ASSERT_LT(sd.doc, exact.size());
        EXPECT_GE(exact[sd.doc] + 1e-9, truth.back().score)
            << "planned doc " << sd.doc << " outside the exact top-N";
        EXPECT_NEAR(sd.score, exact[sd.doc], 1e-9)
            << "planned doc " << sd.doc;
      }
    }

    // SearchBatch fans out over the same coordinator (nested parallelism
    // degrades gracefully); forced runs must equal sequential Execute.
    SearchOptions opts;
    opts.n = kTopN;
    opts.safe_only = false;
    opts.force = PhysicalStrategy::kMaxScore;
    auto batch = db.SearchBatch(queries, opts, 4);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch.ValueOrDie().results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto sequential = db.Execute(PhysicalStrategy::kMaxScore, queries[i],
                                   kTopN);
      ASSERT_TRUE(sequential.ok());
      ExpectShardedParity(sequential.ValueOrDie(),
                          batch.ValueOrDie().results[i].top, kTopN,
                          "search batch");
    }

    // Explain names the sharded storage and the shard visit/skip split.
    SearchOptions explain_opts;
    explain_opts.n = kTopN;
    auto text = db.ExplainSearch(queries[0], explain_opts);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_NE(text.ValueOrDie().find("storage: sharded("), std::string::npos)
        << text.ValueOrDie();
    EXPECT_NE(text.ValueOrDie().find("shards: visited"), std::string::npos)
        << text.ValueOrDie();
  }
}

TEST(ShardedCatalogTest, EngineReopensShardedCatalogFromDisk) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/sharded_engine_reopen";
  std::filesystem::remove_all(dir);
  const DatabaseConfig config = ShardedConfig(dir, 2);
  uint64_t live_before = 0;
  {
    auto db = MmDatabase::Open(config);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.ValueOrDie()->AddDocument({{1, 2}, {2, 1}}).ok());
    ASSERT_TRUE(db.ValueOrDie()->DeleteDocument(9).ok());
    ASSERT_TRUE(db.ValueOrDie()->Flush().ok());
    live_before =
        db.ValueOrDie()->sharded_catalog()->Snapshot()->stats().num_live_docs;
    ASSERT_EQ(live_before, 120u);  // 120 seeded + 1 added - 1 deleted
  }
  auto reopened = MmDatabase::Open(config);
  ASSERT_TRUE(reopened.ok());
  // First mutation recovers the durable shards instead of re-seeding.
  auto id = reopened.ValueOrDie()->AddDocument({{3, 1}});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const auto snap = reopened.ValueOrDie()->sharded_catalog()->Snapshot();
  EXPECT_EQ(snap->stats().num_live_docs, live_before + 1);
  EXPECT_TRUE(snap->IsDeleted(9));
}

}  // namespace
}  // namespace moa
