// The exec-layer acceptance test: every entry of AllStrategies() has a
// registered executor whose result matches the legacy topn free function
// it wraps — exact item-for-item match for safe strategies, top-N doc-set
// equality (recall 1.0) for unsafe ones, whose reported scores may be
// partial by design.
#include "exec/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/strategy.h"
#include "storage/sparse_index_cache.h"
#include "tests/test_util.h"
#include "topn/baselines.h"
#include "topn/fagin.h"
#include "topn/fragment_topn.h"
#include "topn/maxscore.h"
#include "topn/probabilistic.h"
#include "topn/stop_after.h"

namespace moa {
namespace {

constexpr size_t kN = 10;

/// The legacy per-strategy dispatch (the engine switch this PR deleted),
/// kept here as the reference the registry must reproduce.
Result<TopNResult> LegacyExecute(PhysicalStrategy s, const Query& q,
                                 SparseIndexCache* sparse_cache) {
  const InvertedFile& f =
      testutil::SmallCollectionWithImpacts().inverted_file();
  const ScoringModel& m = testutil::SmallModel();
  const Fragmentation& frag = testutil::SmallFragmentation();
  switch (s) {
    case PhysicalStrategy::kFullSort:
      return FullSortTopN(f, m, q, kN);
    case PhysicalStrategy::kHeap:
      return HeapTopN(f, m, q, kN);
    case PhysicalStrategy::kFaginFA:
      return FaginFA(f, m, q, kN);
    case PhysicalStrategy::kFaginTA:
      return FaginTA(f, m, q, kN);
    case PhysicalStrategy::kFaginNRA:
      return FaginNRA(f, m, q, kN);
    case PhysicalStrategy::kStopAfterConservative: {
      StopAfterOptions opts;
      opts.policy = StopAfterPolicy::kConservative;
      return StopAfterTopN(f, m, q, kN, opts);
    }
    case PhysicalStrategy::kStopAfterAggressive: {
      StopAfterOptions opts;
      opts.policy = StopAfterPolicy::kAggressive;
      return StopAfterTopN(f, m, q, kN, opts);
    }
    case PhysicalStrategy::kProbabilistic:
      return ProbabilisticTopN(f, m, q, kN, ProbabilisticOptions{});
    case PhysicalStrategy::kSmallFragment:
      return SmallFragmentTopN(f, frag, m, q, kN);
    case PhysicalStrategy::kQualitySwitchFull: {
      QualitySwitchOptions opts;
      opts.mode = LargeFragmentMode::kFullScan;
      return QualitySwitchTopN(f, frag, m, q, kN, opts);
    }
    case PhysicalStrategy::kQualitySwitchSparse: {
      QualitySwitchOptions opts;
      opts.mode = LargeFragmentMode::kSparseProbe;
      opts.sparse_cache = sparse_cache;
      return QualitySwitchTopN(f, frag, m, q, kN, opts);
    }
    case PhysicalStrategy::kMaxScore: {
      MaxScoreOptions opts;
      opts.mode = PruneMode::kContinue;
      return MaxScoreTopN(f, m, q, kN, opts);
    }
    case PhysicalStrategy::kQuitPrune: {
      MaxScoreOptions opts;
      opts.mode = PruneMode::kQuit;
      return MaxScoreTopN(f, m, q, kN, opts);
    }
  }
  return Status::Internal("legacy reference missing for strategy");
}

ExecContext TestContext(SparseIndexCache* cache) {
  ExecContext ctx;
  ctx.file = &testutil::SmallCollectionWithImpacts().inverted_file();
  ctx.model = &testutil::SmallModel();
  ctx.fragmentation = &testutil::SmallFragmentation();
  ctx.sparse_cache = cache;
  return ctx;
}

std::set<DocId> DocSet(const TopNResult& r) {
  std::set<DocId> out;
  for (const ScoredDoc& sd : r.items) out.insert(sd.doc);
  return out;
}

class RegistryParityTest
    : public ::testing::TestWithParam<PhysicalStrategy> {};

TEST_P(RegistryParityTest, ExecutorMatchesLegacyFreeFunction) {
  const PhysicalStrategy s = GetParam();
  const StrategyRegistry& registry = StrategyRegistry::Global();
  ASSERT_TRUE(registry.Has(s)) << "no executor registered";

  SparseIndexCache legacy_cache;
  SparseIndexCache registry_cache;
  const ExecContext ctx = TestContext(&registry_cache);

  for (const Query& q : testutil::SmallQueries()) {
    Result<TopNResult> legacy = LegacyExecute(s, q, &legacy_cache);
    Result<TopNResult> via_registry = registry.Execute(s, ctx, q, kN);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
    ASSERT_TRUE(via_registry.ok()) << via_registry.status().ToString();
    const TopNResult& a = legacy.ValueOrDie();
    const TopNResult& b = via_registry.ValueOrDie();

    if (IsSafeStrategy(s)) {
      // Safe strategies are deterministic and exact: item-for-item match.
      ASSERT_EQ(a.items.size(), b.items.size());
      for (size_t i = 0; i < a.items.size(); ++i) {
        EXPECT_EQ(a.items[i].doc, b.items[i].doc) << "rank " << i;
        EXPECT_DOUBLE_EQ(a.items[i].score, b.items[i].score) << "rank " << i;
      }
    } else {
      // Unsafe strategies are still deterministic under fixed seeds: the
      // returned top-N sets must coincide (their reported scores may be
      // partial by design, so only the set is compared).
      EXPECT_EQ(DocSet(a), DocSet(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, RegistryParityTest, ::testing::ValuesIn(AllStrategies()),
    [](const ::testing::TestParamInfo<PhysicalStrategy>& info) {
      return std::string(StrategyName(info.param));
    });

TEST(StrategyRegistryTest, EveryStrategyIsRegisteredWithMetadata) {
  const StrategyRegistry& registry = StrategyRegistry::Global();
  for (PhysicalStrategy s : AllStrategies()) {
    const StrategyRegistry::Entry* entry = registry.Find(s);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->name.empty());
    EXPECT_EQ(entry->safe, IsSafeStrategy(s));
    EXPECT_TRUE(static_cast<bool>(entry->factory));
  }
  EXPECT_EQ(registry.Registered().size(), AllStrategies().size());
}

TEST(StrategyRegistryTest, StrategyFromNameRoundTrips) {
  for (PhysicalStrategy s : AllStrategies()) {
    const std::optional<PhysicalStrategy> back =
        StrategyFromName(StrategyName(s));
    ASSERT_TRUE(back.has_value()) << StrategyName(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(StrategyFromName("no_such_strategy").has_value());
  EXPECT_FALSE(StrategyFromName("").has_value());
}

TEST(StrategyRegistryTest, RejectsDuplicateRegistration) {
  StrategyRegistry local;
  auto factory = [](const ExecOptions&) {
    return std::unique_ptr<StrategyExecutor>();
  };
  EXPECT_TRUE(
      local.Register(PhysicalStrategy::kHeap, "heap", true, factory).ok());
  EXPECT_FALSE(
      local.Register(PhysicalStrategy::kHeap, "heap2", true, factory).ok());
  EXPECT_FALSE(
      local.Register(PhysicalStrategy::kFullSort, "heap", true, factory)
          .ok());
}

TEST(StrategyRegistryTest, MismatchedStrategyOptionsAreRejected) {
  const StrategyRegistry& registry = StrategyRegistry::Global();
  const Query q = testutil::SmallQueries()[0];
  SparseIndexCache cache;
  const ExecContext ctx = TestContext(&cache);

  // Typed options aimed at the wrong family: InvalidArgument, not a
  // silent ignore.
  ExecOptions fagin_opts;
  fagin_opts.strategy_options = FaginOptions{};
  EXPECT_FALSE(
      registry.Execute(PhysicalStrategy::kHeap, ctx, q, kN, fagin_opts).ok());
  EXPECT_FALSE(
      registry.Execute(PhysicalStrategy::kMaxScore, ctx, q, kN, fagin_opts)
          .ok());
  EXPECT_TRUE(
      registry.Execute(PhysicalStrategy::kFaginTA, ctx, q, kN, fagin_opts)
          .ok());

  ExecOptions switch_opts;
  switch_opts.strategy_options = QualitySwitchOptions{};
  EXPECT_FALSE(registry
                   .Execute(PhysicalStrategy::kStopAfterConservative, ctx, q,
                            kN, switch_opts)
                   .ok());
  EXPECT_TRUE(registry
                  .Execute(PhysicalStrategy::kQualitySwitchFull, ctx, q, kN,
                           switch_opts)
                  .ok());
  // Strategies without typed options reject every family.
  EXPECT_FALSE(
      registry.Execute(PhysicalStrategy::kSmallFragment, ctx, q, kN,
                       switch_opts)
          .ok());
}

TEST(StrategyRegistryTest, OptionRejectionNamesTheAcceptedVariant) {
  // The message must tell the caller what the strategy *does* accept —
  // the fix is to send that type (or none), not to guess.
  const StrategyRegistry& registry = StrategyRegistry::Global();
  const Query q = testutil::SmallQueries()[0];
  const ExecContext ctx = TestContext(nullptr);

  ExecOptions fagin_opts;
  fagin_opts.strategy_options = FaginOptions{};
  auto r = registry.Execute(PhysicalStrategy::kMaxScore, ctx, q, kN,
                           fagin_opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("strategy 'maxscore'"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("accepts MaxScoreOptions"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("got FaginOptions"), std::string::npos)
      << r.status().ToString();

  // Strategies without typed options say so explicitly.
  ExecOptions switch_opts;
  switch_opts.strategy_options = QualitySwitchOptions{};
  auto heap = registry.Execute(PhysicalStrategy::kHeap, ctx, q, kN,
                               switch_opts);
  ASSERT_FALSE(heap.ok());
  EXPECT_NE(heap.status().message().find(
                "accepts no typed strategy options (common knobs only)"),
            std::string::npos)
      << heap.status().ToString();
  EXPECT_NE(heap.status().message().find("got QualitySwitchOptions"),
            std::string::npos)
      << heap.status().ToString();
}

TEST(StrategyRegistryTest, CommonKnobsAreAcceptedEverywhere) {
  // switch_threshold is a common hint: strategies it does not apply to
  // ignore it by design instead of erroring (Search forwards it to any
  // planner-chosen strategy).
  const StrategyRegistry& registry = StrategyRegistry::Global();
  const Query q = testutil::SmallQueries()[0];
  SparseIndexCache cache;
  const ExecContext ctx = TestContext(&cache);
  ExecOptions opts;
  opts.switch_threshold = 0.5;
  for (PhysicalStrategy s : AllStrategies()) {
    EXPECT_TRUE(registry.Execute(s, ctx, q, kN, opts).ok())
        << StrategyName(s);
  }
}

TEST(StrategyRegistryTest, MissingContextPiecesAreRejected) {
  const StrategyRegistry& registry = StrategyRegistry::Global();
  Query q = testutil::SmallQueries()[0];

  ExecContext empty;
  EXPECT_FALSE(
      registry.Execute(PhysicalStrategy::kHeap, empty, q, kN).ok());

  // Fragment strategies demand a fragmentation.
  ExecContext no_frag;
  no_frag.file = &testutil::SmallCollectionWithImpacts().inverted_file();
  no_frag.model = &testutil::SmallModel();
  EXPECT_FALSE(
      registry.Execute(PhysicalStrategy::kSmallFragment, no_frag, q, kN)
          .ok());
  EXPECT_TRUE(registry.Execute(PhysicalStrategy::kHeap, no_frag, q, kN).ok());
}

}  // namespace
}  // namespace moa
