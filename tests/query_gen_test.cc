#include "ir/query_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollection;

TEST(QueryGenTest, ProducesRequestedShape) {
  QueryWorkloadConfig config;
  config.num_queries = 10;
  config.terms_per_query = 3;
  auto qs = GenerateQueries(SmallCollection(), config);
  ASSERT_TRUE(qs.ok());
  EXPECT_EQ(qs.ValueOrDie().size(), 10u);
  for (const auto& q : qs.ValueOrDie()) {
    EXPECT_EQ(q.terms.size(), 3u);
  }
}

TEST(QueryGenTest, TermsAreDistinctAndOccurring) {
  QueryWorkloadConfig config;
  config.num_queries = 20;
  config.terms_per_query = 5;
  auto qs = GenerateQueries(SmallCollection(), config);
  ASSERT_TRUE(qs.ok());
  const InvertedFile& f = SmallCollection().inverted_file();
  for (const auto& q : qs.ValueOrDie()) {
    std::set<TermId> unique(q.terms.begin(), q.terms.end());
    EXPECT_EQ(unique.size(), q.terms.size());
    for (TermId t : q.terms) EXPECT_GT(f.DocFrequency(t), 0u);
  }
}

TEST(QueryGenTest, DeterministicForSeed) {
  QueryWorkloadConfig config;
  config.seed = 123;
  auto a = GenerateQueries(SmallCollection(), config);
  auto b = GenerateQueries(SmallCollection(), config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.ValueOrDie().size(), b.ValueOrDie().size());
  for (size_t i = 0; i < a.ValueOrDie().size(); ++i) {
    EXPECT_EQ(a.ValueOrDie()[i].terms, b.ValueOrDie()[i].terms);
  }
}

TEST(QueryGenTest, RejectsZeroTermQueries) {
  QueryWorkloadConfig config;
  config.terms_per_query = 0;
  EXPECT_FALSE(GenerateQueries(SmallCollection(), config).ok());
}

TEST(QueryGenTest, ZipfQueriesPreferFrequentTerms) {
  QueryWorkloadConfig zipf_config;
  zipf_config.num_queries = 50;
  zipf_config.terms_per_query = 4;
  zipf_config.distribution = QueryTermDistribution::kZipf;
  QueryWorkloadConfig uniform_config = zipf_config;
  uniform_config.distribution = QueryTermDistribution::kUniform;

  auto mean_df = [&](const std::vector<Query>& qs) {
    const InvertedFile& f = SmallCollection().inverted_file();
    double sum = 0;
    int n = 0;
    for (const auto& q : qs) {
      for (TermId t : q.terms) {
        sum += f.DocFrequency(t);
        ++n;
      }
    }
    return sum / n;
  };
  auto zq = GenerateQueries(SmallCollection(), zipf_config);
  auto uq = GenerateQueries(SmallCollection(), uniform_config);
  ASSERT_TRUE(zq.ok() && uq.ok());
  EXPECT_GT(mean_df(zq.ValueOrDie()), 2.0 * mean_df(uq.ValueOrDie()));
}

TEST(QueryGenTest, MixedQueriesContainBothHeadAndTailTerms) {
  QueryWorkloadConfig config;
  config.num_queries = 30;
  config.terms_per_query = 4;
  config.distribution = QueryTermDistribution::kMixed;
  auto qs = GenerateQueries(SmallCollection(), config);
  ASSERT_TRUE(qs.ok());
  const InvertedFile& f = SmallCollection().inverted_file();
  int head = 0, tail = 0;
  for (const auto& q : qs.ValueOrDie()) {
    for (TermId t : q.terms) {
      if (f.DocFrequency(t) >= 50) ++head;
      if (f.DocFrequency(t) <= 5) ++tail;
    }
  }
  EXPECT_GT(head, 0);
  EXPECT_GT(tail, 0);
}

}  // namespace
}  // namespace moa
