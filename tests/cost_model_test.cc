#include "optimizer/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "optimizer/explain.h"
#include "optimizer/planner.h"
#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;
using testutil::SmallFragmentation;
using testutil::SmallQueries;

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : est_(&SmallCollectionWithImpacts().inverted_file(),
             &SmallFragmentation()),
        model_(&est_) {}

  CardinalityEstimator est_;
  CostModel model_;
};

TEST_F(CostModelTest, CardinalityVolumeSplitsAcrossFragments) {
  for (const Query& q : SmallQueries()) {
    EXPECT_EQ(est_.QueryVolume(q),
              est_.QueryVolume(q, FragmentId::kSmall) +
                  est_.QueryVolume(q, FragmentId::kLarge));
  }
}

TEST_F(CostModelTest, ExpectedCandidatesBounded) {
  const double d =
      static_cast<double>(SmallCollectionWithImpacts().inverted_file().num_docs());
  for (const Query& q : SmallQueries()) {
    const double c = est_.ExpectedCandidates(q);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, d);
    // At least as many as the largest single posting list.
    uint32_t max_df = 0;
    for (TermId t : q.terms) {
      max_df = std::max(
          max_df, SmallCollectionWithImpacts().inverted_file().DocFrequency(t));
    }
    EXPECT_GE(c + 1e-6, static_cast<double>(max_df));
  }
}

TEST_F(CostModelTest, ActiveTermsSplitsAcrossFragments) {
  for (const Query& q : SmallQueries()) {
    EXPECT_EQ(est_.ActiveTerms(q),
              est_.ActiveTerms(q, FragmentId::kSmall) +
                  est_.ActiveTerms(q, FragmentId::kLarge));
  }
}

TEST_F(CostModelTest, AllStrategiesProduceFiniteEstimates) {
  for (PhysicalStrategy s : AllStrategies()) {
    PlanCostEstimate e = model_.Estimate(s, SmallQueries()[0], 10);
    EXPECT_GE(e.scalar, 0.0) << StrategyName(s);
    EXPECT_TRUE(std::isfinite(e.scalar)) << StrategyName(s);
  }
}

TEST_F(CostModelTest, SmallFragmentPredictedCheapest) {
  const PlanCostEstimate small =
      model_.Estimate(PhysicalStrategy::kSmallFragment, SmallQueries()[0], 10);
  const PlanCostEstimate full =
      model_.Estimate(PhysicalStrategy::kFullSort, SmallQueries()[0], 10);
  EXPECT_LT(small.scalar, full.scalar);
}

TEST_F(CostModelTest, HeapPredictedCheaperThanFullSort) {
  for (const Query& q : SmallQueries()) {
    EXPECT_LE(model_.Estimate(PhysicalStrategy::kHeap, q, 10).scalar,
              model_.Estimate(PhysicalStrategy::kFullSort, q, 10).scalar);
  }
}

TEST_F(CostModelTest, SafetyClassification) {
  EXPECT_TRUE(IsSafeStrategy(PhysicalStrategy::kFullSort));
  EXPECT_TRUE(IsSafeStrategy(PhysicalStrategy::kFaginTA));
  EXPECT_TRUE(IsSafeStrategy(PhysicalStrategy::kQualitySwitchFull));
  EXPECT_FALSE(IsSafeStrategy(PhysicalStrategy::kSmallFragment));
  EXPECT_FALSE(IsSafeStrategy(PhysicalStrategy::kQualitySwitchSparse));
}

TEST_F(CostModelTest, FragmentStrategiesUnavailableWithoutFragmentation) {
  CardinalityEstimator bare(&SmallCollectionWithImpacts().inverted_file());
  CostModel model(&bare);
  EXPECT_FALSE(
      model.Available(PhysicalStrategy::kSmallFragment, SmallQueries()[0]));
  EXPECT_FALSE(model.Available(PhysicalStrategy::kQualitySwitchFull,
                               SmallQueries()[0]));
  EXPECT_TRUE(model.Available(PhysicalStrategy::kFullSort, SmallQueries()[0]));
}

TEST_F(CostModelTest, StrategyNamesUniqueAndStable) {
  std::set<std::string> names;
  for (PhysicalStrategy s : AllStrategies()) names.insert(StrategyName(s));
  EXPECT_EQ(names.size(), AllStrategies().size());
}

// ------------------------------- planner ----------------------------------

TEST_F(CostModelTest, PlannerPicksCheapestSafeStrategy) {
  Planner planner(&model_);
  PlannerOptions opts;
  opts.safe_only = true;
  auto plan = planner.Plan(SmallQueries()[0], 10, opts);
  ASSERT_TRUE(plan.ok());
  const auto& alts = plan.ValueOrDie().alternatives;
  ASSERT_GE(alts.size(), 2u);
  for (size_t i = 1; i < alts.size(); ++i) {
    EXPECT_LE(alts[i - 1].scalar, alts[i].scalar);
  }
  EXPECT_TRUE(IsSafeStrategy(plan.ValueOrDie().strategy));
}

TEST_F(CostModelTest, PlannerUnsafeModeCanPickSmallFragment) {
  Planner planner(&model_);
  PlannerOptions opts;
  opts.safe_only = false;
  // Find a query with at least one large-fragment term so small-fragment
  // actually skips work.
  auto plan = planner.Plan(SmallQueries()[0], 10, opts);
  ASSERT_TRUE(plan.ok());
  bool unsafe_considered = false;
  for (const auto& alt : plan.ValueOrDie().alternatives) {
    if (!IsSafeStrategy(alt.strategy)) unsafe_considered = true;
  }
  EXPECT_TRUE(unsafe_considered);
}

TEST_F(CostModelTest, PlannerHonorsForce) {
  Planner planner(&model_);
  PlannerOptions opts;
  opts.force = PhysicalStrategy::kFaginTA;
  auto plan = planner.Plan(SmallQueries()[0], 10, opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.ValueOrDie().strategy, PhysicalStrategy::kFaginTA);
}

TEST_F(CostModelTest, PlannerHonorsExclude) {
  Planner planner(&model_);
  PlannerOptions opts;
  opts.exclude = {PhysicalStrategy::kFaginTA, PhysicalStrategy::kFaginNRA,
                  PhysicalStrategy::kFaginFA};
  auto plan = planner.Plan(SmallQueries()[0], 10, opts);
  ASSERT_TRUE(plan.ok());
  for (const auto& alt : plan.ValueOrDie().alternatives) {
    EXPECT_NE(alt.strategy, PhysicalStrategy::kFaginTA);
    EXPECT_NE(alt.strategy, PhysicalStrategy::kFaginNRA);
    EXPECT_NE(alt.strategy, PhysicalStrategy::kFaginFA);
  }
}

TEST_F(CostModelTest, ExplainMentionsChosenStrategy) {
  Planner planner(&model_);
  auto plan = planner.Plan(SmallQueries()[0], 10, PlannerOptions{});
  ASSERT_TRUE(plan.ok());
  const std::string text = ExplainPlan(plan.ValueOrDie());
  EXPECT_NE(text.find(StrategyName(plan.ValueOrDie().strategy)),
            std::string::npos);
  EXPECT_NE(text.find("alternatives"), std::string::npos);
}

}  // namespace
}  // namespace moa
