// Cursor-API conformance suite: the PostingCursor contract
// (storage/segment/posting_cursor.h) must hold identically for every
// implementation — the in-memory adapter over an InvertedFile, the lazy
// block-decoding cursor over compressed segments in *both* payload codecs
// (bit-packed MOAIF03, the writer default, and varbyte MOAIF02; each at a
// block size small enough that every list spans several blocks, so
// advance_to crosses block boundaries, and at the production default),
// and the catalog's chained/merged tombstone-filtering cursor over a
// segments+memtable snapshot whose live documents equal the reference.
//
// Set MOA_CODEC=varbyte or MOA_CODEC=bit-packed to restrict the
// segment-backed parameterizations to one codec (the in-memory and
// catalog sources always run).
//
// Also here: the FragmentCursor contract (fragments partition each list,
// descend in max impact, and each fragment's sub-cursor obeys the full
// PostingCursor contract) and the ImpactCursor contract (every
// implementation reproduces the in-memory materialized impact order
// bit-for-bit — docs, tfs and weights).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cost_ticker.h"
#include "ir/scoring.h"
#include "storage/catalog/index_catalog.h"
#include "storage/inverted_file.h"
#include "storage/segment/fragment_directory.h"
#include "storage/segment/posting_cursor.h"
#include "storage/segment/segment_reader.h"
#include "storage/segment/segment_writer.h"

namespace moa {
namespace {

// Edge-case lists: empty, singleton, exactly one small block (4), one
// posting more than a block, multi-byte varbyte gaps/tfs, and a dense run.
const std::vector<std::vector<Posting>>& TermLists() {
  static const std::vector<std::vector<Posting>> lists = [] {
    std::vector<std::vector<Posting>> l(6);
    // term 0: empty.
    l[1] = {{5, 3}};
    l[2] = {{0, 1}, {2, 2}, {4, 1}, {6, 7}};            // == small block size
    l[3] = {{1, 1}, {3, 1}, {5, 2}, {7, 1}, {9, 4}};    // small block + 1
    l[4] = {{0, 1}, {200, 130}, {20000, 1}, {120000, 70000}};  // big gaps/tfs
    for (DocId d = 10; d < 400; d += 3) l[5].push_back({d, 1 + d % 5});
    return l;
  }();
  return lists;
}

/// Builds an InvertedFile whose per-term lists equal TermLists(), with
/// BM25 impact orders (so the in-memory source reports impacts too).
struct Fixture {
  InvertedFile file;
  std::unique_ptr<ScoringModel> model;
  std::string segment4_path;
  std::string segment128_path;
  std::string segment4_vb_path;
  std::string segment128_vb_path;
  std::unique_ptr<SegmentReader> segment4;
  std::unique_ptr<SegmentReader> segment128;
  std::unique_ptr<SegmentReader> segment4_vb;
  std::unique_ptr<SegmentReader> segment128_vb;
  std::unique_ptr<IndexCatalog> catalog;
  std::shared_ptr<const CatalogReadView> catalog_view;
  uint64_t catalog_doc_space = 0;

  Fixture() {
    const auto& lists = TermLists();
    DocId num_docs = 0;
    for (const auto& list : lists) {
      if (!list.empty()) num_docs = std::max(num_docs, list.back().doc + 1);
    }
    std::vector<std::vector<std::pair<TermId, uint32_t>>> per_doc(num_docs);
    for (TermId t = 0; t < lists.size(); ++t) {
      for (const Posting& p : lists[t]) per_doc[p.doc].emplace_back(t, p.tf);
    }
    InvertedFileBuilder builder(lists.size());
    for (DocId d = 0; d < num_docs; ++d) {
      EXPECT_TRUE(builder.AddDocument(d, per_doc[d]).ok());
    }
    file = builder.Build();
    model = MakeBm25(&file);
    file.BuildImpactOrders(
        [&](TermId t, const Posting& p) { return model->Weight(t, p); });

    SegmentWriterOptions options;
    options.impact_fn = [&](TermId t, const Posting& p) {
      return model->Weight(t, p);
    };
    segment4_path = std::string(::testing::TempDir()) + "/cursor4.moaseg";
    segment128_path = std::string(::testing::TempDir()) + "/cursor128.moaseg";
    segment4_vb_path =
        std::string(::testing::TempDir()) + "/cursor4vb.moaseg";
    segment128_vb_path =
        std::string(::testing::TempDir()) + "/cursor128vb.moaseg";
    options.codec = SegmentCodec::kBitPacked;
    options.block_size = 4;
    EXPECT_TRUE(WriteSegment(file, segment4_path, options).ok());
    options.block_size = 128;
    EXPECT_TRUE(WriteSegment(file, segment128_path, options).ok());
    options.codec = SegmentCodec::kVarbyte;
    options.block_size = 4;
    EXPECT_TRUE(WriteSegment(file, segment4_vb_path, options).ok());
    options.block_size = 128;
    EXPECT_TRUE(WriteSegment(file, segment128_vb_path, options).ok());
    segment4 = std::move(SegmentReader::Open(segment4_path)).ValueOrDie();
    segment128 = std::move(SegmentReader::Open(segment128_path)).ValueOrDie();
    segment4_vb =
        std::move(SegmentReader::Open(segment4_vb_path)).ValueOrDie();
    segment128_vb =
        std::move(SegmentReader::Open(segment128_vb_path)).ValueOrDie();
    EXPECT_EQ(segment4->codec(), SegmentCodec::kBitPacked);
    EXPECT_EQ(segment4_vb->codec(), SegmentCodec::kVarbyte);

    BuildCatalog(per_doc);
  }

  /// A catalog snapshot whose *live* documents equal the reference under
  /// the same ids: the reference documents spread over a flushed segment
  /// + live memtable postings (so every long list chains across both
  /// component kinds), followed by tail junk documents containing every
  /// term that are tombstoned in the memtable. (Junk must sit at tail
  /// ids to keep live ids equal to the reference's, and flushing it
  /// would sweep the live reference postings out of the memtable too —
  /// segment-side tombstone filtering is exercised by catalog_test,
  /// catalog_parity_test and the lifecycle fuzz harness instead.) The
  /// merged cursors must skip every junk posting.
  void BuildCatalog(
      const std::vector<std::vector<std::pair<TermId, uint32_t>>>& per_doc) {
    const std::string dir =
        std::string(::testing::TempDir()) + "/cursor_catalog";
    std::filesystem::remove_all(dir);
    IndexCatalog::Options options;
    options.num_terms = TermLists().size();
    options.dir = dir;
    options.segment_block_size = 4;
    catalog = std::move(IndexCatalog::Create(options)).ValueOrDie();

    auto add_range = [&](size_t begin, size_t end) {
      std::vector<DocTerms> batch;
      for (size_t d = begin; d < end; ++d) {
        batch.emplace_back(per_doc[d].begin(), per_doc[d].end());
      }
      EXPECT_TRUE(catalog->AddDocuments(batch).ok());
    };
    const size_t split = std::min<size_t>(300, per_doc.size());
    add_range(0, split);
    EXPECT_TRUE(catalog->Flush().ok());
    // The rest of the reference stays *live in the memtable*, so merged
    // cursors chain segment -> memtable mid-list.
    if (split < per_doc.size()) add_range(split, per_doc.size());

    DocTerms junk;
    for (TermId t = 0; t < TermLists().size(); ++t) junk.emplace_back(t, 2);
    auto first = catalog->AddDocuments({junk, junk, junk, junk, junk});
    EXPECT_TRUE(first.ok());
    for (DocId d = 0; d < 5; ++d) {
      EXPECT_TRUE(catalog->DeleteDocument(first.ValueOrDie() + d).ok());
    }

    catalog_view = catalog->OpenReadView();
    catalog_doc_space = catalog_view->state().doc_space();
    EXPECT_EQ(catalog_doc_space, per_doc.size() + 5);
  }

  ~Fixture() {
    segment4.reset();
    segment128.reset();
    segment4_vb.reset();
    segment128_vb.reset();
    for (const std::string* path : {&segment4_path, &segment128_path,
                                    &segment4_vb_path, &segment128_vb_path}) {
      std::remove(path->c_str());
      std::remove(FragmentSidecarPath(*path).c_str());
    }
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

enum class SourceKind {
  kInMemory,
  kSegmentBlock4,
  kSegmentBlock128,
  kSegmentVarbyte4,
  kSegmentVarbyte128,
  kCatalog,
};

std::string KindName(const ::testing::TestParamInfo<SourceKind>& info) {
  switch (info.param) {
    case SourceKind::kInMemory: return "InMemory";
    case SourceKind::kSegmentBlock4: return "SegmentBitPacked4";
    case SourceKind::kSegmentBlock128: return "SegmentBitPacked128";
    case SourceKind::kSegmentVarbyte4: return "SegmentVarbyte4";
    case SourceKind::kSegmentVarbyte128: return "SegmentVarbyte128";
    case SourceKind::kCatalog: return "CatalogMerged";
  }
  return "?";
}

/// The segment codec behind a parameterization (nullopt for sources that
/// are not a single mmap segment).
std::optional<SegmentCodec> KindCodec(SourceKind kind) {
  switch (kind) {
    case SourceKind::kSegmentBlock4:
    case SourceKind::kSegmentBlock128:
      return SegmentCodec::kBitPacked;
    case SourceKind::kSegmentVarbyte4:
    case SourceKind::kSegmentVarbyte128:
      return SegmentCodec::kVarbyte;
    default:
      return std::nullopt;
  }
}

class CursorConformanceTest : public ::testing::TestWithParam<SourceKind> {
 protected:
  void SetUp() override {
    // MOA_CODEC filters the segment-backed parameterizations (see
    // scripts/check.sh); other sources always run.
    const char* filter = std::getenv("MOA_CODEC");
    const std::optional<SegmentCodec> codec = KindCodec(GetParam());
    if (filter != nullptr && *filter != '\0' && codec.has_value() &&
        std::string(filter) != SegmentCodecName(*codec)) {
      GTEST_SKIP() << "MOA_CODEC=" << filter << " excludes "
                   << SegmentCodecName(*codec);
    }
  }

  const PostingSource& source() const {
    Fixture& f = SharedFixture();
    switch (GetParam()) {
      case SourceKind::kSegmentBlock4: return *f.segment4;
      case SourceKind::kSegmentBlock128: return *f.segment128;
      case SourceKind::kSegmentVarbyte4: return *f.segment4_vb;
      case SourceKind::kSegmentVarbyte128: return *f.segment128_vb;
      case SourceKind::kCatalog: return *f.catalog_view;
      case SourceKind::kInMemory: break;
    }
    static InMemoryPostingSource in_memory(&SharedFixture().file);
    return in_memory;
  }

  /// The catalog's doc-id space includes its tombstoned junk slots.
  size_t expected_num_docs() const {
    Fixture& f = SharedFixture();
    return GetParam() == SourceKind::kCatalog
               ? static_cast<size_t>(f.catalog_doc_space)
               : f.file.num_docs();
  }
};

TEST_P(CursorConformanceTest, SourceShapeMatchesReference) {
  const auto& lists = TermLists();
  EXPECT_EQ(source().num_terms(), lists.size());
  EXPECT_EQ(source().num_docs(), expected_num_docs());
  for (TermId t = 0; t < lists.size(); ++t) {
    EXPECT_EQ(source().DocFrequency(t), lists[t].size()) << "term " << t;
    // Impact availability only matters for terms that have postings (the
    // in-memory impact order of an empty list is vacuously absent).
    if (!lists[t].empty()) {
      EXPECT_TRUE(source().HasImpacts(t)) << "term " << t;
    }
  }
}

TEST_P(CursorConformanceTest, SequentialScanYieldsExactSequence) {
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    auto cursor = source().OpenCursor(t);
    EXPECT_EQ(cursor->size(), lists[t].size());
    for (const Posting& expected : lists[t]) {
      ASSERT_FALSE(cursor->at_end()) << "term " << t;
      EXPECT_EQ(cursor->doc(), expected.doc) << "term " << t;
      EXPECT_EQ(cursor->tf(), expected.tf) << "term " << t;
      cursor->next();
    }
    EXPECT_TRUE(cursor->at_end()) << "term " << t;
    EXPECT_EQ(cursor->doc(), kEndDoc) << "term " << t;
    cursor->next();  // next at end stays at end
    EXPECT_TRUE(cursor->at_end()) << "term " << t;
  }
}

TEST_P(CursorConformanceTest, AdvanceToEveryPresentDocLandsExactly) {
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    for (const Posting& target : lists[t]) {
      auto cursor = source().OpenCursor(t);
      cursor->advance_to(target.doc);
      ASSERT_FALSE(cursor->at_end()) << "term " << t << " doc " << target.doc;
      EXPECT_EQ(cursor->doc(), target.doc);
      EXPECT_EQ(cursor->tf(), target.tf);
    }
  }
}

TEST_P(CursorConformanceTest, AdvanceToAbsentDocLandsOnSuccessor) {
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    for (size_t i = 0; i + 1 < lists[t].size(); ++i) {
      const DocId absent = lists[t][i].doc + 1;
      if (absent == lists[t][i + 1].doc) continue;  // not absent
      auto cursor = source().OpenCursor(t);
      cursor->advance_to(absent);
      ASSERT_FALSE(cursor->at_end());
      EXPECT_EQ(cursor->doc(), lists[t][i + 1].doc) << "term " << t;
    }
  }
}

TEST_P(CursorConformanceTest, AdvancePastLastDocExhausts) {
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    auto cursor = source().OpenCursor(t);
    const DocId past =
        lists[t].empty() ? 0 : lists[t].back().doc + 1;
    cursor->advance_to(past);
    EXPECT_TRUE(cursor->at_end()) << "term " << t;
    auto cursor2 = source().OpenCursor(t);
    cursor2->advance_to(kEndDoc);
    EXPECT_TRUE(cursor2->at_end()) << "term " << t;
  }
}

TEST_P(CursorConformanceTest, AdvanceBackwardsIsANoOp) {
  // Term 5 is long enough to advance into the middle.
  const auto& list = TermLists()[5];
  auto cursor = source().OpenCursor(5);
  const DocId mid = list[list.size() / 2].doc;
  cursor->advance_to(mid);
  ASSERT_EQ(cursor->doc(), mid);
  cursor->advance_to(list.front().doc);  // target < current: must not move
  EXPECT_EQ(cursor->doc(), mid);
  cursor->advance_to(mid);  // target == current: must not move
  EXPECT_EQ(cursor->doc(), mid);
}

TEST_P(CursorConformanceTest, AdvanceAcrossBlockBoundaries) {
  // With block size 4, term 5 (130 postings) spans dozens of blocks; the
  // semantics must be independent of where blocks fall. Walk the
  // reference list and advance to every 2nd doc + 1.
  const auto& list = TermLists()[5];
  auto cursor = source().OpenCursor(5);
  for (size_t i = 0; i + 1 < list.size(); i += 2) {
    cursor->advance_to(list[i].doc + 1);
    ASSERT_FALSE(cursor->at_end()) << "i=" << i;
    EXPECT_EQ(cursor->doc(), list[i + 1].doc) << "i=" << i;
    EXPECT_EQ(cursor->tf(), list[i + 1].tf) << "i=" << i;
  }
}

TEST_P(CursorConformanceTest, MixedNextAndAdvanceInterleave) {
  const auto& list = TermLists()[5];
  auto cursor = source().OpenCursor(5);
  size_t i = 0;
  while (i < list.size()) {
    ASSERT_EQ(cursor->doc(), list[i].doc) << "i=" << i;
    if (i % 3 == 0 && i + 4 < list.size()) {
      i += 4;
      cursor->advance_to(list[i].doc);
    } else {
      ++i;
      cursor->next();
    }
  }
  EXPECT_TRUE(cursor->at_end());
}

TEST_P(CursorConformanceTest, EmptyListIsImmediatelyExhausted) {
  auto cursor = source().OpenCursor(0);
  EXPECT_TRUE(cursor->at_end());
  EXPECT_EQ(cursor->doc(), kEndDoc);
  EXPECT_EQ(cursor->size(), 0u);
  cursor->next();
  cursor->advance_to(42);
  EXPECT_TRUE(cursor->at_end());
}

TEST_P(CursorConformanceTest, ImpactBoundsDominateEveryPosting) {
  // max_impact must equal the in-memory max weight bit-for-bit (that is
  // what makes max-score pruning representation-agnostic), and the block
  // bound must dominate every posting in the current block.
  Fixture& f = SharedFixture();
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    if (lists[t].empty()) continue;
    auto cursor = source().OpenCursor(t);
    EXPECT_EQ(cursor->max_impact(), f.file.list(t).max_weight())
        << "term " << t;
    for (; !cursor->at_end(); cursor->next()) {
      const double w =
          f.model->Weight(t, Posting{cursor->doc(), cursor->tf()});
      EXPECT_GE(cursor->block_max_impact(), w) << "term " << t;
      EXPECT_GE(cursor->max_impact(), w) << "term " << t;
    }
  }
}

TEST_P(CursorConformanceTest, FindTfMatchesReference) {
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    DocId prev_end = 0;
    for (const Posting& p : lists[t]) {
      EXPECT_EQ(source().FindTf(t, p.doc), std::optional<uint32_t>(p.tf))
          << "term " << t << " doc " << p.doc;
      if (p.doc > prev_end) {
        EXPECT_FALSE(source().FindTf(t, p.doc - 1).has_value())
            << "term " << t;
      }
      prev_end = p.doc + 1;
    }
    EXPECT_FALSE(source().FindTf(t, prev_end).has_value()) << "term " << t;
  }
}

TEST_P(CursorConformanceTest, FragmentsPartitionEveryListInImpactOrder) {
  // Every source serves a valid fragment directory: per term, fragments
  // are enumerated by descending max impact, each streams doc-ordered
  // postings dominated by its bound, and their union (re-sorted by doc)
  // is exactly the reference list.
  Fixture& f = SharedFixture();
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    auto fragments = source().OpenFragmentCursor(t);
    if (lists[t].empty()) {
      EXPECT_EQ(fragments->num_fragments(), 0u) << "term " << t;
      continue;
    }
    ASSERT_GE(fragments->num_fragments(), 1u) << "term " << t;
    std::map<DocId, uint32_t> gathered;
    double prev_bound = std::numeric_limits<double>::infinity();
    size_t total = 0;
    for (size_t fr = 0; fr < fragments->num_fragments(); ++fr) {
      EXPECT_LE(fragments->max_impact(fr), prev_bound)
          << "term " << t << " fragment " << fr;
      prev_bound = fragments->max_impact(fr);
      size_t count = 0;
      DocId prev_doc = 0;
      for (auto cursor = fragments->OpenFragment(fr); !cursor->at_end();
           cursor->next(), ++count) {
        if (count > 0) {
          EXPECT_GT(cursor->doc(), prev_doc) << "term " << t;
        }
        prev_doc = cursor->doc();
        const double w =
            f.model->Weight(t, Posting{cursor->doc(), cursor->tf()});
        EXPECT_GE(fragments->max_impact(fr), w)
            << "term " << t << " fragment " << fr;
        EXPECT_TRUE(gathered.emplace(cursor->doc(), cursor->tf()).second)
            << "term " << t << ": doc in two fragments";
      }
      EXPECT_EQ(count, fragments->size(fr)) << "term " << t;
      total += count;
    }
    EXPECT_EQ(total, lists[t].size()) << "term " << t;
    size_t i = 0;
    for (const auto& [doc, tf] : gathered) {
      EXPECT_EQ(doc, lists[t][i].doc) << "term " << t;
      EXPECT_EQ(tf, lists[t][i].tf) << "term " << t;
      ++i;
    }
  }
}

TEST_P(CursorConformanceTest, EveryFragmentCursorObeysTheCursorContract) {
  // A fragment's sub-cursor is a full PostingCursor over its sub-list:
  // re-scan, advance_to on present and absent targets, past-the-end
  // exhaustion, and the never-move-backwards rule.
  for (TermId t = 0; t < TermLists().size(); ++t) {
    auto fragments = source().OpenFragmentCursor(t);
    for (size_t fr = 0; fr < fragments->num_fragments(); ++fr) {
      std::vector<Posting> sub;
      for (auto cursor = fragments->OpenFragment(fr); !cursor->at_end();
           cursor->next()) {
        sub.push_back(Posting{cursor->doc(), cursor->tf()});
      }
      ASSERT_FALSE(sub.empty()) << "term " << t << " fragment " << fr;
      for (size_t i = 0; i < sub.size(); ++i) {
        auto cursor = fragments->OpenFragment(fr);
        cursor->advance_to(sub[i].doc);
        ASSERT_FALSE(cursor->at_end()) << "term " << t;
        EXPECT_EQ(cursor->doc(), sub[i].doc);
        EXPECT_EQ(cursor->tf(), sub[i].tf);
        cursor->advance_to(sub[0].doc);  // backwards: must not move
        EXPECT_EQ(cursor->doc(), sub[i].doc);
      }
      auto cursor = fragments->OpenFragment(fr);
      cursor->advance_to(sub.back().doc + 1);
      EXPECT_TRUE(cursor->at_end()) << "term " << t << " fragment " << fr;
    }
  }
}

TEST_P(CursorConformanceTest, ImpactCursorReproducesMaterializedOrder) {
  // Sorted access must be *identical* across implementations: the same
  // (doc, tf, weight) sequence as the in-memory materialized impact
  // order, weights bit-for-bit — anything weaker would let the Fagin
  // family take different decisions on different storage.
  Fixture& f = SharedFixture();
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    auto cursor = source().OpenImpactCursor(t, *f.model);
    EXPECT_EQ(cursor->size(), lists[t].size()) << "term " << t;
    const PostingList& reference = f.file.list(t);
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_FALSE(cursor->at_end()) << "term " << t << " rank " << i;
      EXPECT_EQ(cursor->doc(), reference.ByImpact(i).doc)
          << "term " << t << " rank " << i;
      EXPECT_EQ(cursor->tf(), reference.ByImpact(i).tf)
          << "term " << t << " rank " << i;
      EXPECT_EQ(cursor->weight(), reference.ImpactWeight(i))
          << "term " << t << " rank " << i;
      cursor->next();
    }
    EXPECT_TRUE(cursor->at_end()) << "term " << t;
    cursor->next();  // next at end stays at end
    EXPECT_TRUE(cursor->at_end()) << "term " << t;
    EXPECT_EQ(cursor->doc(), kEndDoc) << "term " << t;
  }
}

TEST_P(CursorConformanceTest, ShallowAdvanceThenDeepAdvanceLandsExactly) {
  // shallow_advance(d) must leave the cursor on a block whose skip key
  // spans d without decoding; the following deep advance_to(d) must land
  // exactly where a direct advance_to(d) would.
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    for (const Posting& target : lists[t]) {
      auto cursor = source().OpenCursor(t);
      cursor->shallow_advance(target.doc);
      ASSERT_NE(cursor->block_last_doc(), kEndDoc)
          << "term " << t << " doc " << target.doc;
      EXPECT_GE(cursor->block_last_doc(), target.doc) << "term " << t;
      cursor->advance_to(target.doc);
      ASSERT_FALSE(cursor->at_end()) << "term " << t;
      EXPECT_EQ(cursor->doc(), target.doc);
      EXPECT_EQ(cursor->tf(), target.tf);
    }
  }
}

TEST_P(CursorConformanceTest, ShallowAdvancePastLastDocBlockExhausts) {
  const auto& lists = TermLists();
  for (TermId t = 0; t < lists.size(); ++t) {
    auto cursor = source().OpenCursor(t);
    const DocId past = lists[t].empty() ? 0 : lists[t].back().doc + 1;
    cursor->shallow_advance(past);
    // Either no block spans the target (exhausted), or the landing block
    // only holds docs the deep cursor filters out (the catalog keeps
    // tombstoned tail docs in its blocks); its skip key must still span
    // the target so the bound stays conservative.
    if (cursor->block_last_doc() != kEndDoc) {
      EXPECT_GE(cursor->block_last_doc(), past) << "term " << t;
    }
    cursor->shallow_advance(kEndDoc);
    EXPECT_EQ(cursor->block_last_doc(), kEndDoc) << "term " << t;
    // A block-exhausted cursor stays exhausted under further shallow or
    // deep movement.
    cursor->shallow_advance(kEndDoc);
    EXPECT_EQ(cursor->block_last_doc(), kEndDoc) << "term " << t;
    cursor->advance_to(0);
    EXPECT_TRUE(cursor->at_end()) << "term " << t;
  }
}

TEST_P(CursorConformanceTest, ShallowAdvanceBackwardsIsANoOp) {
  const auto& list = TermLists()[5];
  auto cursor = source().OpenCursor(5);
  const DocId mid = list[list.size() / 2].doc;
  cursor->shallow_advance(mid);
  const DocId landed = cursor->block_last_doc();
  ASSERT_NE(landed, kEndDoc);
  cursor->shallow_advance(list.front().doc);  // target before the block
  EXPECT_EQ(cursor->block_last_doc(), landed);
  cursor->shallow_advance(mid);  // block already spans the target
  EXPECT_EQ(cursor->block_last_doc(), landed);
}

TEST_P(CursorConformanceTest, ShallowBlockWalkDecodesNoPayload) {
  // Walking a whole list block-by-block through shallow_advance must
  // never decode a block; over block-structured segments it must tick
  // skipped blocks (the in-memory list is one block, so nothing to skip).
  auto cursor = source().OpenCursor(5);
  CostScope scope;
  int hops = 0;
  while (cursor->block_last_doc() != kEndDoc) {
    ASSERT_LT(hops, 1000);  // malformed skip chain guard
    ++hops;
    EXPECT_GE(cursor->block_max_impact(), 0.0);
    cursor->shallow_advance(cursor->block_last_doc() + 1);
  }
  const CostCounters used = scope.Snapshot();
  EXPECT_EQ(used.blocks_decoded, 0);
  if (KindCodec(GetParam()).has_value() ||
      GetParam() == SourceKind::kCatalog) {
    EXPECT_GT(used.blocks_skipped, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, CursorConformanceTest,
                         ::testing::Values(SourceKind::kInMemory,
                                           SourceKind::kSegmentBlock4,
                                           SourceKind::kSegmentBlock128,
                                           SourceKind::kSegmentVarbyte4,
                                           SourceKind::kSegmentVarbyte128,
                                           SourceKind::kCatalog),
                         KindName);

TEST(SegmentFragmentDirectoryTest, SmallBlockSegmentIsActuallyFragmented) {
  // Guard against the suite silently degenerating to single-fragment
  // sources: with block size 4 and the default grouping, the long term 5
  // must span several fragments on disk.
  Fixture& f = SharedFixture();
  ASSERT_TRUE(f.segment4->has_fragment_directory());
  auto fragments = f.segment4->OpenFragmentCursor(5);
  EXPECT_GE(fragments->num_fragments(), 3u);
}

}  // namespace
}  // namespace moa
