#include "storage/dictionary.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

TEST(DictionaryTest, InsertAssignsDenseIds) {
  Dictionary d;
  EXPECT_EQ(d.GetOrInsert("apple"), 0u);
  EXPECT_EQ(d.GetOrInsert("banana"), 1u);
  EXPECT_EQ(d.GetOrInsert("cherry"), 2u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(DictionaryTest, ReinsertReturnsSameId) {
  Dictionary d;
  TermId a = d.GetOrInsert("apple");
  EXPECT_EQ(d.GetOrInsert("apple"), a);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, LookupFindsExisting) {
  Dictionary d;
  d.GetOrInsert("x");
  TermId y = d.GetOrInsert("y");
  auto found = d.Lookup("y");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, y);
}

TEST(DictionaryTest, LookupMissingReturnsNullopt) {
  Dictionary d;
  d.GetOrInsert("x");
  EXPECT_FALSE(d.Lookup("zebra").has_value());
}

TEST(DictionaryTest, RoundTripStrings) {
  Dictionary d;
  TermId a = d.GetOrInsert("retrieval");
  TermId b = d.GetOrInsert("multimedia");
  EXPECT_EQ(d.GetString(a), "retrieval");
  EXPECT_EQ(d.GetString(b), "multimedia");
}

TEST(DictionaryTest, EmptyStringIsAValidTerm) {
  Dictionary d;
  TermId e = d.GetOrInsert("");
  EXPECT_EQ(d.GetString(e), "");
  EXPECT_TRUE(d.Lookup("").has_value());
}

}  // namespace
}  // namespace moa
