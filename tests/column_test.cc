#include "storage/column.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

TEST(ColumnTest, TypedConstructionAndAppend) {
  Column c(ColumnType::kInt64);
  c.AppendInt64(3);
  c.AppendInt64(-7);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.Int64At(0), 3);
  EXPECT_EQ(c.Int64At(1), -7);
}

TEST(ColumnTest, FromFactories) {
  Column i = Column::FromInt64({1, 2, 3});
  Column d = Column::FromDouble({1.5, 2.5});
  Column s = Column::FromString({"a", "b"});
  EXPECT_EQ(i.type(), ColumnType::kInt64);
  EXPECT_EQ(d.type(), ColumnType::kDouble);
  EXPECT_EQ(s.type(), ColumnType::kString);
  EXPECT_EQ(s.StringAt(1), "b");
}

TEST(ColumnTest, SelectRangeInt) {
  Column c = Column::FromInt64({5, 1, 9, 3, 7});
  auto r = c.SelectRange(3.0, 7.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), (std::vector<uint32_t>{0, 3, 4}));
}

TEST(ColumnTest, SelectRangeDouble) {
  Column c = Column::FromDouble({0.1, 0.5, 0.9});
  auto r = c.SelectRange(0.4, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), (std::vector<uint32_t>{1, 2}));
}

TEST(ColumnTest, SelectRangeOnStringsFails) {
  Column c = Column::FromString({"a"});
  auto r = c.SelectRange(0, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ColumnTest, TakeGathersRows) {
  Column c = Column::FromInt64({10, 20, 30, 40});
  Column taken = c.Take({3, 0, 3});
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken.Int64At(0), 40);
  EXPECT_EQ(taken.Int64At(1), 10);
  EXPECT_EQ(taken.Int64At(2), 40);
}

TEST(ColumnTest, SortPermutationAscendingStable) {
  Column c = Column::FromDouble({3.0, 1.0, 2.0, 1.0});
  auto perm = c.SortPermutation();
  EXPECT_EQ(perm, (std::vector<uint32_t>{1, 3, 2, 0}));
}

TEST(ColumnTest, SortPermutationStrings) {
  Column c = Column::FromString({"pear", "apple", "mango"});
  auto perm = c.SortPermutation();
  EXPECT_EQ(perm, (std::vector<uint32_t>{1, 2, 0}));
}

TEST(ColumnTest, TypeNames) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt64), "int64");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDouble), "double");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kString), "string");
}

}  // namespace
}  // namespace moa
