#include "topn/maxscore.h"

#include <gtest/gtest.h>

#include "ir/exact_eval.h"
#include "ir/metrics.h"
#include "test_util.h"
#include "topn/baselines.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;
using testutil::SmallModel;
using testutil::SmallQueries;

class MaxScoreTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MaxScoreTest, ContinueModeReturnsExactTopSet) {
  const size_t n = GetParam();
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, n);
    auto scores = AccumulateScores(f, SmallModel(), q);
    auto r = MaxScoreTopN(f, SmallModel(), q, n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const auto& got = r.ValueOrDie().items;
    ASSERT_EQ(got.size(), exact.size());
    const double nth = exact.empty() ? 0.0 : exact.back().score;
    for (const auto& sd : got) {
      // Tie-tolerant set safety + exact scores for returned docs.
      EXPECT_GE(scores[sd.doc] + 1e-9, nth) << "doc " << sd.doc;
      EXPECT_NEAR(scores[sd.doc], sd.score, 1e-9) << "doc " << sd.doc;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ns, MaxScoreTest, ::testing::Values(1, 5, 10, 50));

TEST(MaxScoreTest, ContinueCreatesFewerAccumulatorsThanHeap) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  int64_t pruned_cand = 0, full_cand = 0;
  for (const Query& q : SmallQueries()) {
    auto r = MaxScoreTopN(f, SmallModel(), q, 5);
    ASSERT_TRUE(r.ok());
    pruned_cand += r.ValueOrDie().stats.candidates;
    full_cand += HeapTopN(f, SmallModel(), q, 5).stats.candidates;
  }
  EXPECT_LT(pruned_cand, full_cand);
}

TEST(MaxScoreTest, ContinueScoresFewerPostingsThanExhaustive) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  for (const Query& q : SmallQueries()) {
    int64_t volume = 0;
    for (TermId t : q.terms) volume += f.DocFrequency(t);
    auto r = MaxScoreTopN(f, SmallModel(), q, 5);
    ASSERT_TRUE(r.ok());
    // Once pruning engages, remaining terms are probed per accumulator
    // (random reads) instead of scanned, so sequential reads can only
    // drop below the full posting volume; scoring still skips pruned
    // documents.
    EXPECT_LE(r.ValueOrDie().stats.cost.sequential_reads, volume);
    EXPECT_LE(r.ValueOrDie().stats.cost.score_evals, volume);
  }
}

TEST(MaxScoreTest, QuitModeCheaperButLossy) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  MaxScoreOptions quit;
  quit.mode = PruneMode::kQuit;
  double quit_work = 0.0, cont_work = 0.0, overlap_sum = 0.0;
  int quit_count = 0;
  for (const Query& q : SmallQueries()) {
    auto rq = MaxScoreTopN(f, SmallModel(), q, 10, quit);
    auto rc = MaxScoreTopN(f, SmallModel(), q, 10);
    ASSERT_TRUE(rq.ok() && rc.ok());
    quit_work += rq.ValueOrDie().stats.cost.Scalar();
    cont_work += rc.ValueOrDie().stats.cost.Scalar();
    auto exact = ExactTopN(f, SmallModel(), q, 10);
    auto scores = AccumulateScores(f, SmallModel(), q);
    overlap_sum +=
        EvaluateQuality(rq.ValueOrDie().items, exact, scores).overlap_at_n;
    quit_count += rq.ValueOrDie().stats.stopped_early ? 1 : 0;
  }
  EXPECT_LE(quit_work, cont_work);
  // Quality may drop but should stay usable on this workload.
  EXPECT_GT(overlap_sum / SmallQueries().size(), 0.5);
}

TEST(MaxScoreTest, AccumulatorBudgetBounds) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  MaxScoreOptions opts;
  opts.accumulator_budget = 64;
  for (const Query& q : SmallQueries()) {
    auto r = MaxScoreTopN(f, SmallModel(), q, 10, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.ValueOrDie().stats.candidates, 64 + 0);
  }
}

TEST(MaxScoreTest, BudgetSweepTradesQualityForMemory) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  double prev_quality = -1.0;
  for (size_t budget : {16u, 128u, 0u}) {  // 0 = unlimited
    MaxScoreOptions opts;
    opts.accumulator_budget = budget;
    double quality = 0.0;
    for (const Query& q : SmallQueries()) {
      auto exact = ExactTopN(f, SmallModel(), q, 10);
      auto scores = AccumulateScores(f, SmallModel(), q);
      auto r = MaxScoreTopN(f, SmallModel(), q, 10, opts);
      ASSERT_TRUE(r.ok());
      quality +=
          EvaluateQuality(r.ValueOrDie().items, exact, scores).score_ratio;
    }
    EXPECT_GE(quality + 1e-9, prev_quality)
        << "larger budgets must not hurt quality (budget " << budget << ")";
    prev_quality = quality;
  }
}

TEST(MaxScoreTest, RequiresImpactOrders) {
  CollectionConfig config;
  config.num_docs = 40;
  config.vocabulary = 60;
  config.seed = 3;
  auto coll = Collection::Generate(config).ValueOrDie();
  auto model = MakeBm25(&coll.mutable_inverted_file());
  Query q;
  for (TermId t = 0; t < 60; ++t) {
    if (coll.inverted_file().DocFrequency(t) > 0) {
      q.terms.push_back(t);
      break;
    }
  }
  auto r = MaxScoreTopN(coll.inverted_file(), *model, q, 5);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MaxScoreTest, EmptyQueryYieldsEmpty) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  auto r = MaxScoreTopN(f, SmallModel(), Query{}, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().items.empty());
}

}  // namespace
}  // namespace moa
