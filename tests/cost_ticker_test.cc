#include "common/cost_ticker.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

TEST(CostTickerTest, ScopeCapturesDelta) {
  CostTicker::TickSeq(5);  // pre-existing noise
  CostScope scope;
  CostTicker::TickSeq(3);
  CostTicker::TickRandom(2);
  CostTicker::TickScore(7);
  CostTicker::TickCompare(11);
  CostTicker::TickBytes(100);
  CostCounters c = scope.Snapshot();
  EXPECT_EQ(c.sequential_reads, 3);
  EXPECT_EQ(c.random_reads, 2);
  EXPECT_EQ(c.score_evals, 7);
  EXPECT_EQ(c.compares, 11);
  EXPECT_EQ(c.bytes_touched, 100);
}

TEST(CostTickerTest, NestedScopes) {
  CostScope outer;
  CostTicker::TickSeq(1);
  {
    CostScope inner;
    CostTicker::TickSeq(10);
    EXPECT_EQ(inner.Snapshot().sequential_reads, 10);
  }
  EXPECT_EQ(outer.Snapshot().sequential_reads, 11);
}

TEST(CostCountersTest, Arithmetic) {
  CostCounters a{1, 2, 3, 4, 5};
  CostCounters b{10, 20, 30, 40, 50};
  CostCounters sum = a + b;
  EXPECT_EQ(sum.sequential_reads, 11);
  EXPECT_EQ(sum.bytes_touched, 55);
  CostCounters diff = b - a;
  EXPECT_EQ(diff.random_reads, 18);
  EXPECT_EQ(diff.compares, 36);
}

TEST(CostCountersTest, ScalarWeightsRandomAboveSequential) {
  CostCounters seq{100, 0, 0, 0, 0};
  CostCounters rnd{0, 100, 0, 0, 0};
  EXPECT_LT(seq.Scalar(), rnd.Scalar());
}

TEST(CostCountersTest, ToStringMentionsAllCounters) {
  CostCounters c{1, 2, 3, 4, 5};
  const std::string s = c.ToString();
  EXPECT_NE(s.find("seq=1"), std::string::npos);
  EXPECT_NE(s.find("rnd=2"), std::string::npos);
  EXPECT_NE(s.find("score=3"), std::string::npos);
  EXPECT_NE(s.find("cmp=4"), std::string::npos);
  EXPECT_NE(s.find("bytes=5"), std::string::npos);
}

}  // namespace
}  // namespace moa
