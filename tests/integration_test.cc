// Cross-module property suites: the DESIGN.md invariants, swept over
// strategies, collection shapes and scoring models.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "ir/metrics.h"

namespace moa {
namespace {

struct WorldParam {
  ScoringModelKind scoring;
  double zipf_skew;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const WorldParam& p) {
  return os << p.label;
}

class WorldTest : public ::testing::TestWithParam<WorldParam> {
 protected:
  void SetUp() override {
    DatabaseConfig config;
    config.collection.num_docs = 800;
    config.collection.vocabulary = 1500;
    config.collection.mean_doc_length = 80;
    config.collection.zipf_skew = GetParam().zipf_skew;
    config.collection.seed = 4242;
    config.scoring = GetParam().scoring;
    auto db = MmDatabase::Open(config);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).ValueOrDie();

    QueryWorkloadConfig qconfig;
    qconfig.num_queries = 5;
    qconfig.terms_per_query = 3;
    qconfig.distribution = QueryTermDistribution::kMixed;
    qconfig.seed = 11;
    queries_ = GenerateQueries(db_->collection(), qconfig).ValueOrDie();
  }

  std::unique_ptr<MmDatabase> db_;
  std::vector<Query> queries_;
};

TEST_P(WorldTest, SafetyInvariantAcrossAllSafeStrategies) {
  // DESIGN.md invariant: every safe operator returns the exact top-N set.
  for (const Query& q : queries_) {
    auto truth = db_->GroundTruth(q, 10);
    auto scores = db_->GroundTruthScores(q);
    const double nth = truth.empty() ? 0.0 : truth.back().score;
    for (PhysicalStrategy s : AllStrategies()) {
      if (!IsSafeStrategy(s)) continue;
      auto r = db_->Execute(s, q, 10);
      ASSERT_TRUE(r.ok()) << StrategyName(s) << " " << r.status().ToString();
      ASSERT_EQ(r.ValueOrDie().items.size(), truth.size()) << StrategyName(s);
      for (const auto& sd : r.ValueOrDie().items) {
        EXPECT_GE(scores[sd.doc] + 1e-9, nth)
            << StrategyName(s) << " doc " << sd.doc;
      }
    }
  }
}

TEST_P(WorldTest, UnsafeStrategiesNeverExceedExactScoreMass) {
  for (const Query& q : queries_) {
    auto truth = db_->GroundTruth(q, 10);
    auto scores = db_->GroundTruthScores(q);
    for (PhysicalStrategy s :
         {PhysicalStrategy::kSmallFragment,
          PhysicalStrategy::kQualitySwitchSparse}) {
      auto r = db_->Execute(s, q, 10);
      ASSERT_TRUE(r.ok()) << StrategyName(s);
      QualityReport rep = EvaluateQuality(r.ValueOrDie().items, truth, scores);
      EXPECT_LE(rep.score_ratio, 1.0 + 1e-9) << StrategyName(s);
      EXPECT_GE(rep.score_ratio, 0.0) << StrategyName(s);
    }
  }
}

TEST_P(WorldTest, MonotonicityLargerNContainsSmallerN) {
  // Top-5 must be a prefix-set of top-20 for every safe strategy.
  const Query& q = queries_[0];
  for (PhysicalStrategy s :
       {PhysicalStrategy::kHeap, PhysicalStrategy::kFaginTA,
        PhysicalStrategy::kQualitySwitchFull}) {
    auto r5 = db_->Execute(s, q, 5);
    auto r20 = db_->Execute(s, q, 20);
    ASSERT_TRUE(r5.ok() && r20.ok()) << StrategyName(s);
    std::set<DocId> set20;
    for (const auto& sd : r20.ValueOrDie().items) set20.insert(sd.doc);
    // Allow tie-boundary swaps: compare by score, not doc identity.
    const auto& items5 = r5.ValueOrDie().items;
    const auto& items20 = r20.ValueOrDie().items;
    for (size_t i = 0; i < items5.size() && i < items20.size(); ++i) {
      EXPECT_NEAR(items5[i].score, items20[i].score, 1e-9)
          << StrategyName(s) << " rank " << i;
    }
  }
}

TEST_P(WorldTest, FragmentationPartitionInvariant) {
  const InvertedFile& f = db_->file();
  const Fragmentation& frag = db_->fragmentation();
  int64_t small = 0, large = 0;
  for (TermId t = 0; t < f.num_terms(); ++t) {
    (frag.in_small(t) ? small : large) += f.DocFrequency(t);
  }
  EXPECT_EQ(small, frag.postings_volume(FragmentId::kSmall));
  EXPECT_EQ(large, frag.postings_volume(FragmentId::kLarge));
  EXPECT_EQ(small + large, f.num_postings());
}

TEST_P(WorldTest, CostModelRanksFragmentBelowFull) {
  // The planner's raison d'être: on Zipf data the fragment pass must be
  // predicted (and measured) cheaper than the full scan.
  CardinalityEstimator est(&db_->file(), &db_->fragmentation());
  CostModel model(&est);
  for (const Query& q : queries_) {
    const auto small =
        model.Estimate(PhysicalStrategy::kSmallFragment, q, 10);
    const auto full = model.Estimate(PhysicalStrategy::kFullSort, q, 10);
    EXPECT_LE(small.scalar, full.scalar);
    auto r_small = db_->Execute(PhysicalStrategy::kSmallFragment, q, 10);
    auto r_full = db_->Execute(PhysicalStrategy::kFullSort, q, 10);
    ASSERT_TRUE(r_small.ok() && r_full.ok());
    EXPECT_LE(r_small.ValueOrDie().stats.cost.sequential_reads,
              r_full.ValueOrDie().stats.cost.sequential_reads);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, WorldTest,
    ::testing::Values(
        WorldParam{ScoringModelKind::kBm25, 1.0, "bm25_zipf1"},
        WorldParam{ScoringModelKind::kTfIdf, 1.0, "tfidf_zipf1"},
        WorldParam{ScoringModelKind::kLanguageModel, 1.0, "lm_zipf1"},
        WorldParam{ScoringModelKind::kBm25, 0.6, "bm25_zipf06"},
        WorldParam{ScoringModelKind::kBm25, 1.4, "bm25_zipf14"}),
    [](const ::testing::TestParamInfo<WorldParam>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace moa
