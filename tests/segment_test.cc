// MOAIF02 segment format: write → mmap-open → decode round trip,
// compression vs the raw MOAIF01 dump, atomic-write behavior, and
// negative tests for truncated / bit-flipped segment files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/io.h"
#include "storage/segment/segment_format.h"
#include "storage/segment/segment_reader.h"
#include "storage/segment/segment_writer.h"
#include "test_util.h"

namespace moa {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

SegmentWriterOptions ImpactOptions(uint32_t block_size = 128) {
  SegmentWriterOptions options;
  options.block_size = block_size;
  options.impact_fn = [](TermId t, const Posting& p) {
    return testutil::SmallModel().Weight(t, p);
  };
  return options;
}

const InvertedFile& TestFile() {
  return testutil::SmallCollectionWithImpacts().inverted_file();
}

void ExpectSameFile(const InvertedFile& a, const InvertedFile& b) {
  ASSERT_EQ(a.num_terms(), b.num_terms());
  ASSERT_EQ(a.num_docs(), b.num_docs());
  EXPECT_EQ(a.num_postings(), b.num_postings());
  EXPECT_EQ(a.total_tokens(), b.total_tokens());
  for (DocId d = 0; d < a.num_docs(); ++d) {
    ASSERT_EQ(a.DocLength(d), b.DocLength(d)) << "doc " << d;
  }
  for (TermId t = 0; t < a.num_terms(); ++t) {
    ASSERT_EQ(a.list(t).postings(), b.list(t).postings()) << "term " << t;
  }
}

TEST(SegmentTest, RoundTripThroughMmapAndFullDecode) {
  const std::string path = TempPath("roundtrip.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());

  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const SegmentReader& segment = *reader.ValueOrDie();
  EXPECT_EQ(segment.num_terms(), TestFile().num_terms());
  EXPECT_EQ(segment.num_docs(), TestFile().num_docs());
  EXPECT_EQ(segment.total_tokens(),
            static_cast<uint64_t>(TestFile().total_tokens()));
  EXPECT_EQ(segment.block_size(), 128u);
  EXPECT_TRUE(segment.has_impacts());
  for (DocId d = 0; d < TestFile().num_docs(); ++d) {
    ASSERT_EQ(segment.DocLength(d), TestFile().DocLength(d)) << "doc " << d;
  }
  ASSERT_TRUE(segment.CheckIntegrity().ok());

  auto decoded = segment.ToInvertedFile();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameFile(decoded.ValueOrDie(), TestFile());
  std::remove(path.c_str());
}

TEST(SegmentTest, RoundTripWithoutImpactsAndOddBlockSize) {
  const std::string path = TempPath("noimpacts.moaseg");
  SegmentWriterOptions options;
  options.block_size = 7;  // exercises non-power-of-two remainders
  ASSERT_TRUE(WriteSegment(TestFile(), path, options).ok());
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader.ValueOrDie()->has_impacts());
  EXPECT_FALSE(reader.ValueOrDie()->HasImpacts(0));
  auto decoded = reader.ValueOrDie()->ToInvertedFile();
  ASSERT_TRUE(decoded.ok());
  ExpectSameFile(decoded.ValueOrDie(), TestFile());
  std::remove(path.c_str());
}

TEST(SegmentTest, EmptyCollectionRoundTrips) {
  InvertedFileBuilder builder(0);
  InvertedFile empty = builder.Build();
  const std::string path = TempPath("empty.moaseg");
  ASSERT_TRUE(WriteSegment(empty, path).ok());
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.ValueOrDie()->num_terms(), 0u);
  EXPECT_EQ(reader.ValueOrDie()->num_docs(), 0u);
  EXPECT_TRUE(reader.ValueOrDie()->CheckIntegrity().ok());
  std::remove(path.c_str());
}

TEST(SegmentTest, CompressesAtLeastTwoToOneVersusMoaif01) {
  const std::string v1 = TempPath("size.moaif");
  const std::string v2 = TempPath("size.moaseg");
  ASSERT_TRUE(WriteInvertedFile(TestFile(), v1).ok());
  ASSERT_TRUE(WriteSegment(TestFile(), v2, ImpactOptions()).ok());
  const auto v1_size = std::filesystem::file_size(v1);
  const auto v2_size = std::filesystem::file_size(v2);
  EXPECT_GE(v1_size, 2 * v2_size)
      << "MOAIF01=" << v1_size << "B MOAIF02=" << v2_size << "B";
  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST(SegmentTest, RejectsZeroBlockSize) {
  SegmentWriterOptions options;
  options.block_size = 0;
  EXPECT_EQ(WriteSegment(TestFile(), TempPath("zero.moaseg"), options).code(),
            StatusCode::kInvalidArgument);
}

TEST(SegmentTest, MissingFileIsNotFound) {
  auto r = SegmentReader::Open(TempPath("nope.moaseg"));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SegmentTest, RejectsBadMagic) {
  const std::string path = TempPath("magic.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.write("MOAIF01", 7);  // v1 magic in a v2 file
  fs.close();
  EXPECT_EQ(SegmentReader::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsTruncation) {
  const std::string path = TempPath("trunc.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  const auto full = std::filesystem::file_size(path);
  // Every truncation point must fail cleanly: mid-header, mid-directory,
  // mid-payload, and one byte short.
  for (const uintmax_t size :
       {uintmax_t{0}, uintmax_t{17}, full / 3, full / 2, full - 1}) {
    std::filesystem::resize_file(path, size);
    auto r = SegmentReader::Open(path);
    EXPECT_FALSE(r.ok()) << "truncated to " << size << " of " << full;
  }
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsTrailingGarbage) {
  const std::string path = TempPath("trail.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  EXPECT_FALSE(SegmentReader::Open(path).ok());
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsPayloadSizeWrappingFileSize) {
  // A crafted header can pair a huge (but cap-passing) num_docs with a
  // payload_bytes chosen so SegmentLayout::file_size wraps around u64
  // back onto the real file size. The exact-size check then passes and
  // Validate's doc-length loop would read ~16 GiB past the mapping —
  // payload_bytes must be bounded by the file size first.
  const std::string path = TempPath("wrap.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  const uint64_t real_size = std::filesystem::file_size(path);
  SegmentHeader header{};
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.read(reinterpret_cast<char*>(&header), sizeof(header));
  header.num_docs = 1ull << 32;  // passes the count cap, inflates layout
  const SegmentLayout bogus(header);
  header.payload_bytes = real_size - bogus.payload;  // wraps file_size
  fs.seekp(0);
  fs.write(reinterpret_cast<const char*>(&header), sizeof(header));
  fs.close();
  EXPECT_EQ(SegmentReader::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsCorruptDirectory) {
  const std::string path = TempPath("dir.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  // Flip the df of the first term-directory entry (offset: header +
  // aligned doc-length section + block_begin/payload_offset/block_count).
  SegmentHeader header{};
  {
    std::ifstream in(path, std::ios::binary);
    in.read(reinterpret_cast<char*>(&header), sizeof(header));
  }
  const SegmentLayout layout(header);
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.seekp(static_cast<std::streamoff>(layout.term_dir + 8 + 8 + 4));
  const uint32_t bogus_df = 0x7FFFFFFF;
  fs.write(reinterpret_cast<const char*>(&bogus_df), sizeof(bogus_df));
  fs.close();
  EXPECT_FALSE(SegmentReader::Open(path).ok());
  std::remove(path.c_str());
}

TEST(SegmentTest, StampsAndReportsTheImpactModel) {
  const std::string path = TempPath("model.moaseg");
  SegmentWriterOptions options = ImpactOptions();
  options.impact_model = testutil::SmallModel().name();
  ASSERT_TRUE(WriteSegment(TestFile(), path, options).ok());
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ValueOrDie()->impact_model(),
            testutil::SmallModel().name().substr(0, kImpactModelBytes - 1));
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsBlockRangeBeyondDirectory) {
  // Hand-crafted segment whose term directory claims 8 blocks while the
  // block directory is empty: the claimed range must be rejected before
  // any block entry is read (it would point past the mapping).
  SegmentHeader header{};
  std::memcpy(header.magic, kSegmentMagic, sizeof(header.magic));
  header.block_size = 1;
  header.num_terms = 1;
  header.num_docs = 8;
  header.num_blocks = 0;  // lies: the term below claims blocks anyway
  TermDirEntry entry{};
  entry.block_count = 8;
  entry.df = 8;

  const std::string path = TempPath("orphan.moaseg");
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  const uint32_t zero_lengths[8] = {};
  out.write(reinterpret_cast<const char*>(zero_lengths),
            sizeof(zero_lengths));
  out.write(reinterpret_cast<const char*>(&entry), sizeof(entry));
  out.close();

  auto r = SegmentReader::Open(path);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsCorruptImpactBound) {
  // max_impact metadata drives max-score pruning; an understated bound
  // would silently drop true top-N documents, so Validate must catch a
  // flipped bound via the term == max-over-blocks invariant.
  const std::string path = TempPath("impact.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  SegmentHeader header{};
  {
    std::ifstream in(path, std::ios::binary);
    in.read(reinterpret_cast<char*>(&header), sizeof(header));
  }
  const SegmentLayout layout(header);
  // Halve the first term's max_impact (the f64 behind
  // block_begin/payload_offset u64s and block_count/df u32s): the term
  // bound then understates the max over its blocks, which Validate
  // rejects.
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  const std::streamoff bound_pos =
      static_cast<std::streamoff>(layout.term_dir + 24);
  double bound = 0;
  fs.seekg(bound_pos);
  fs.read(reinterpret_cast<char*>(&bound), sizeof(bound));
  bound *= 0.5;
  fs.seekp(bound_pos);
  fs.write(reinterpret_cast<const char*>(&bound), sizeof(bound));
  fs.close();
  EXPECT_EQ(SegmentReader::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SegmentTest, PayloadBitFlipFailsIntegrityCheck) {
  const std::string path = TempPath("flip.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  SegmentHeader header{};
  {
    std::ifstream in(path, std::ios::binary);
    in.read(reinterpret_cast<char*>(&header), sizeof(header));
  }
  const SegmentLayout layout(header);
  // Flip one payload byte. Structural validation at Open cannot see the
  // payload, but CheckIntegrity must: the flip changes a doc gap, a tf or
  // a continuation bit, which trips the last-doc / token-sum / span
  // checks.
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.seekg(static_cast<std::streamoff>(layout.payload + 3));
  char byte = 0;
  fs.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  fs.seekp(static_cast<std::streamoff>(layout.payload + 3));
  fs.write(&byte, 1);
  fs.close();
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader.ValueOrDie()->CheckIntegrity().ok());
  std::remove(path.c_str());
}

TEST(SegmentTest, WriteIsAtomicAndLeavesNoTempFile) {
  const std::string path = TempPath("atomic.moaseg");
  // Pre-existing garbage at the destination must be replaced wholesale.
  {
    std::ofstream out(path, std::ios::binary);
    out << "previous garbage content";
  }
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader.ValueOrDie()->CheckIntegrity().ok());
  std::remove(path.c_str());
}

TEST(SegmentTest, FailedWriteCleansUpTempFile) {
  // A destination that cannot be renamed onto (a directory) must fail
  // without leaving the temp file behind.
  const std::string dir = TempPath("atomic_dir.moaseg");
  std::filesystem::create_directory(dir);
  EXPECT_FALSE(WriteSegment(TestFile(), dir, ImpactOptions()).ok());
  EXPECT_FALSE(std::filesystem::exists(dir + ".tmp"));
  std::filesystem::remove(dir);
}

}  // namespace
}  // namespace moa
