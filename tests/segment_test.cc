// MOAIF02/MOAIF03 segment formats: write → mmap-open → decode round trip
// in both payload codecs (varbyte and bit-packed), compression vs the raw
// MOAIF01 dump, atomic-write behavior, a property round-trip of random
// posting blocks at the codec level, and negative tests for truncated /
// bit-flipped / width-corrupted segment files.
//
// Set MOA_CODEC=varbyte or MOA_CODEC=bit-packed to restrict the
// codec-parameterized suite to one codec.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/io.h"
#include "storage/segment/block_codec.h"
#include "storage/segment/segment_format.h"
#include "storage/segment/segment_reader.h"
#include "storage/segment/segment_writer.h"
#include "test_util.h"

namespace moa {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

SegmentWriterOptions ImpactOptions(uint32_t block_size = 128) {
  SegmentWriterOptions options;
  options.block_size = block_size;
  options.impact_fn = [](TermId t, const Posting& p) {
    return testutil::SmallModel().Weight(t, p);
  };
  return options;
}

const InvertedFile& TestFile() {
  return testutil::SmallCollectionWithImpacts().inverted_file();
}

void ExpectSameFile(const InvertedFile& a, const InvertedFile& b) {
  ASSERT_EQ(a.num_terms(), b.num_terms());
  ASSERT_EQ(a.num_docs(), b.num_docs());
  EXPECT_EQ(a.num_postings(), b.num_postings());
  EXPECT_EQ(a.total_tokens(), b.total_tokens());
  for (DocId d = 0; d < a.num_docs(); ++d) {
    ASSERT_EQ(a.DocLength(d), b.DocLength(d)) << "doc " << d;
  }
  for (TermId t = 0; t < a.num_terms(); ++t) {
    ASSERT_EQ(a.list(t).postings(), b.list(t).postings()) << "term " << t;
  }
}

/// Runs the write → open → decode round trips and the corruption
/// negatives once per payload codec; MOA_CODEC restricts to one.
class SegmentCodecTest : public ::testing::TestWithParam<SegmentCodec> {
 protected:
  void SetUp() override {
    if (const char* only = std::getenv("MOA_CODEC")) {
      if (*only != '\0' &&
          std::string(only) != SegmentCodecName(GetParam())) {
        GTEST_SKIP() << "MOA_CODEC=" << only;
      }
    }
  }

  SegmentWriterOptions Options(uint32_t block_size = 128) {
    SegmentWriterOptions options = ImpactOptions(block_size);
    options.codec = GetParam();
    return options;
  }
};

TEST_P(SegmentCodecTest, RoundTripThroughMmapAndFullDecode) {
  const std::string path = TempPath("roundtrip.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, Options()).ok());

  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const SegmentReader& segment = *reader.ValueOrDie();
  EXPECT_EQ(segment.codec(), GetParam());
  EXPECT_EQ(segment.format_name(), SegmentFormatName(GetParam()));
  EXPECT_EQ(segment.num_terms(), TestFile().num_terms());
  EXPECT_EQ(segment.num_docs(), TestFile().num_docs());
  EXPECT_EQ(segment.total_tokens(),
            static_cast<uint64_t>(TestFile().total_tokens()));
  EXPECT_EQ(segment.block_size(), 128u);
  EXPECT_TRUE(segment.has_impacts());
  for (DocId d = 0; d < TestFile().num_docs(); ++d) {
    ASSERT_EQ(segment.DocLength(d), TestFile().DocLength(d)) << "doc " << d;
  }
  ASSERT_TRUE(segment.CheckIntegrity().ok());

  auto decoded = segment.ToInvertedFile();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameFile(decoded.ValueOrDie(), TestFile());
  std::remove(path.c_str());
}

TEST_P(SegmentCodecTest, RoundTripWithoutImpactsAndOddBlockSize) {
  const std::string path = TempPath("noimpacts.moaseg");
  SegmentWriterOptions options;
  options.block_size = 7;  // exercises non-power-of-two remainders
  options.codec = GetParam();
  ASSERT_TRUE(WriteSegment(TestFile(), path, options).ok());
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader.ValueOrDie()->has_impacts());
  EXPECT_FALSE(reader.ValueOrDie()->HasImpacts(0));
  auto decoded = reader.ValueOrDie()->ToInvertedFile();
  ASSERT_TRUE(decoded.ok());
  ExpectSameFile(decoded.ValueOrDie(), TestFile());
  std::remove(path.c_str());
}

TEST(SegmentTest, EmptyCollectionRoundTrips) {
  InvertedFileBuilder builder(0);
  InvertedFile empty = builder.Build();
  const std::string path = TempPath("empty.moaseg");
  ASSERT_TRUE(WriteSegment(empty, path).ok());
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.ValueOrDie()->num_terms(), 0u);
  EXPECT_EQ(reader.ValueOrDie()->num_docs(), 0u);
  EXPECT_TRUE(reader.ValueOrDie()->CheckIntegrity().ok());
  std::remove(path.c_str());
}

TEST(SegmentTest, CompressesAtLeastTwoToOneVersusMoaif01) {
  const std::string v1 = TempPath("size.moaif");
  const std::string v2 = TempPath("size.moaseg");
  ASSERT_TRUE(WriteInvertedFile(TestFile(), v1).ok());
  ASSERT_TRUE(WriteSegment(TestFile(), v2, ImpactOptions()).ok());
  const auto v1_size = std::filesystem::file_size(v1);
  const auto v2_size = std::filesystem::file_size(v2);
  EXPECT_GE(v1_size, 2 * v2_size)
      << "MOAIF01=" << v1_size << "B MOAIF02=" << v2_size << "B";
  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST(SegmentTest, RejectsZeroBlockSize) {
  SegmentWriterOptions options;
  options.block_size = 0;
  EXPECT_EQ(WriteSegment(TestFile(), TempPath("zero.moaseg"), options).code(),
            StatusCode::kInvalidArgument);
}

TEST(SegmentTest, MissingFileIsNotFound) {
  auto r = SegmentReader::Open(TempPath("nope.moaseg"));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SegmentTest, RejectsBadMagic) {
  const std::string path = TempPath("magic.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.write("MOAIF01", 7);  // v1 magic in a v2 file
  fs.close();
  EXPECT_EQ(SegmentReader::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_P(SegmentCodecTest, RejectsTruncation) {
  const std::string path = TempPath("trunc.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, Options()).ok());
  const auto full = std::filesystem::file_size(path);
  // Every truncation point must fail cleanly: mid-header, mid-directory,
  // mid-payload, and one byte short.
  for (const uintmax_t size :
       {uintmax_t{0}, uintmax_t{17}, full / 3, full / 2, full - 1}) {
    std::filesystem::resize_file(path, size);
    auto r = SegmentReader::Open(path);
    EXPECT_FALSE(r.ok()) << "truncated to " << size << " of " << full;
  }
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsTrailingGarbage) {
  const std::string path = TempPath("trail.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  EXPECT_FALSE(SegmentReader::Open(path).ok());
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsPayloadSizeWrappingFileSize) {
  // A crafted header can pair a huge (but cap-passing) num_docs with a
  // payload_bytes chosen so SegmentLayout::file_size wraps around u64
  // back onto the real file size. The exact-size check then passes and
  // Validate's doc-length loop would read ~16 GiB past the mapping —
  // payload_bytes must be bounded by the file size first.
  const std::string path = TempPath("wrap.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  const uint64_t real_size = std::filesystem::file_size(path);
  SegmentHeader header{};
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.read(reinterpret_cast<char*>(&header), sizeof(header));
  header.num_docs = 1ull << 32;  // passes the count cap, inflates layout
  const SegmentLayout bogus(header);
  header.payload_bytes = real_size - bogus.payload;  // wraps file_size
  fs.seekp(0);
  fs.write(reinterpret_cast<const char*>(&header), sizeof(header));
  fs.close();
  EXPECT_EQ(SegmentReader::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsCorruptDirectory) {
  const std::string path = TempPath("dir.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  // Flip the df of the first term-directory entry (offset: header +
  // aligned doc-length section + block_begin/payload_offset/block_count).
  SegmentHeader header{};
  {
    std::ifstream in(path, std::ios::binary);
    in.read(reinterpret_cast<char*>(&header), sizeof(header));
  }
  const SegmentLayout layout(header);
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.seekp(static_cast<std::streamoff>(layout.term_dir + 8 + 8 + 4));
  const uint32_t bogus_df = 0x7FFFFFFF;
  fs.write(reinterpret_cast<const char*>(&bogus_df), sizeof(bogus_df));
  fs.close();
  EXPECT_FALSE(SegmentReader::Open(path).ok());
  std::remove(path.c_str());
}

TEST(SegmentTest, StampsAndReportsTheImpactModel) {
  const std::string path = TempPath("model.moaseg");
  SegmentWriterOptions options = ImpactOptions();
  options.impact_model = testutil::SmallModel().name();
  ASSERT_TRUE(WriteSegment(TestFile(), path, options).ok());
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ValueOrDie()->impact_model(),
            testutil::SmallModel().name().substr(0, kImpactModelBytes - 1));
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsBlockRangeBeyondDirectory) {
  // Hand-crafted segment whose term directory claims 8 blocks while the
  // block directory is empty: the claimed range must be rejected before
  // any block entry is read (it would point past the mapping).
  SegmentHeader header{};
  std::memcpy(header.magic, kSegmentMagic, sizeof(header.magic));
  header.block_size = 1;
  header.num_terms = 1;
  header.num_docs = 8;
  header.num_blocks = 0;  // lies: the term below claims blocks anyway
  TermDirEntry entry{};
  entry.block_count = 8;
  entry.df = 8;

  const std::string path = TempPath("orphan.moaseg");
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  const uint32_t zero_lengths[8] = {};
  out.write(reinterpret_cast<const char*>(zero_lengths),
            sizeof(zero_lengths));
  out.write(reinterpret_cast<const char*>(&entry), sizeof(entry));
  out.close();

  auto r = SegmentReader::Open(path);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SegmentTest, RejectsCorruptImpactBound) {
  // max_impact metadata drives max-score pruning; an understated bound
  // would silently drop true top-N documents, so Validate must catch a
  // flipped bound via the term == max-over-blocks invariant.
  const std::string path = TempPath("impact.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  SegmentHeader header{};
  {
    std::ifstream in(path, std::ios::binary);
    in.read(reinterpret_cast<char*>(&header), sizeof(header));
  }
  const SegmentLayout layout(header);
  // Halve the first term's max_impact (the f64 behind
  // block_begin/payload_offset u64s and block_count/df u32s): the term
  // bound then understates the max over its blocks, which Validate
  // rejects.
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  const std::streamoff bound_pos =
      static_cast<std::streamoff>(layout.term_dir + 24);
  double bound = 0;
  fs.seekg(bound_pos);
  fs.read(reinterpret_cast<char*>(&bound), sizeof(bound));
  bound *= 0.5;
  fs.seekp(bound_pos);
  fs.write(reinterpret_cast<const char*>(&bound), sizeof(bound));
  fs.close();
  EXPECT_EQ(SegmentReader::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_P(SegmentCodecTest, PayloadBitFlipSweepFailsIntegrityCheck) {
  // Single-bit payload corruption anywhere must be caught. Structural
  // validation at Open cannot see the payload, but CheckIntegrity must:
  // a flip changes a doc gap, a tf, a varbyte continuation bit, a packed
  // width/first-doc/reserved header field or a zero padding bit, which
  // trips the last-doc / token-sum / max-tf / span / minimality /
  // padding checks. Sweeps a strided sample of every payload bit.
  const std::string path = TempPath("flip.moaseg");
  ASSERT_TRUE(WriteSegment(TestFile(), path, Options(32)).ok());
  SegmentHeader header{};
  {
    std::ifstream in(path, std::ios::binary);
    in.read(reinterpret_cast<char*>(&header), sizeof(header));
  }
  const SegmentLayout layout(header);
  ASSERT_GT(header.payload_bytes, 0u);
  const uint64_t payload_bits = header.payload_bytes * 8;
  // ~256 probes, stride co-prime with 8 so the in-byte bit position
  // varies across probes.
  uint64_t stride = payload_bits / 256 + 1;
  if (stride % 2 == 0) ++stride;
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  for (uint64_t bit = 0; bit < payload_bits; bit += stride) {
    const std::streamoff pos =
        static_cast<std::streamoff>(layout.payload + bit / 8);
    char byte = 0;
    fs.seekg(pos);
    fs.read(&byte, 1);
    const char flipped = static_cast<char>(byte ^ (1u << (bit % 8)));
    fs.seekp(pos);
    fs.write(&flipped, 1);
    fs.flush();
    auto reader = SegmentReader::Open(path);
    if (reader.ok()) {
      EXPECT_FALSE(reader.ValueOrDie()->CheckIntegrity().ok())
          << "undetected flip of payload bit " << bit;
    }
    fs.seekp(pos);
    fs.write(&byte, 1);  // restore
    fs.flush();
  }
  fs.close();
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Codecs, SegmentCodecTest,
                         ::testing::Values(SegmentCodec::kVarbyte,
                                           SegmentCodec::kBitPacked),
                         [](const auto& info) {
                           return info.param == SegmentCodec::kBitPacked
                                      ? "BitPacked"
                                      : "Varbyte";
                         });

TEST(SegmentTest, BitPackedIsNoLargerThanVarbyteOnTestFile) {
  const std::string vb = TempPath("size_vb.moaseg");
  const std::string bp = TempPath("size_bp.moaseg");
  SegmentWriterOptions options = ImpactOptions();
  options.codec = SegmentCodec::kVarbyte;
  ASSERT_TRUE(WriteSegment(TestFile(), vb, options).ok());
  options.codec = SegmentCodec::kBitPacked;
  ASSERT_TRUE(WriteSegment(TestFile(), bp, options).ok());
  EXPECT_LE(std::filesystem::file_size(bp), std::filesystem::file_size(vb))
      << "varbyte=" << std::filesystem::file_size(vb)
      << "B bit-packed=" << std::filesystem::file_size(bp) << "B";
  std::remove(vb.c_str());
  std::remove(bp.c_str());
}

TEST(BlockCodecTest, RandomBlocksRoundTripBitExactInBothCodecs) {
  // Property test: any doc-sorted block — dense runs, huge gaps, huge
  // tfs, constant values (zero-width packed sections), block sizes from
  // singleton past the production default — must round-trip bit-exactly
  // through either codec.
  Rng rng(20260808);
  for (int iter = 0; iter < 400; ++iter) {
    const size_t count = 1 + rng.Uniform(260);
    const uint32_t gap_mag = 1u << rng.Uniform(19);  // 1 => all gaps == 1
    const uint32_t tf_mag = 1u << rng.Uniform(19);   // 1 => all tfs == 1
    std::vector<Posting> postings(count);
    DocId doc = static_cast<DocId>(rng.Uniform(1u << 20));
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) doc += 1 + static_cast<DocId>(rng.Uniform(gap_mag));
      postings[i] = {doc, 1 + static_cast<uint32_t>(rng.Uniform(tf_mag))};
    }
    for (SegmentCodec codec :
         {SegmentCodec::kVarbyte, SegmentCodec::kBitPacked}) {
      std::vector<uint8_t> bytes;
      EncodePostingBlock(codec, postings.data(), count, bytes);
      std::vector<DocId> docs(count);
      std::vector<uint32_t> tfs(count);
      auto s = DecodePostingBlock(codec, bytes.data(), bytes.size(), count,
                                  postings.back().doc, docs.data(),
                                  tfs.data());
      ASSERT_TRUE(s.ok()) << SegmentCodecName(codec) << " iter " << iter
                          << ": " << s.ToString();
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(docs[i], postings[i].doc)
            << SegmentCodecName(codec) << " iter " << iter << " pos " << i;
        ASSERT_EQ(tfs[i], postings[i].tf)
            << SegmentCodecName(codec) << " iter " << iter << " pos " << i;
      }
    }
  }
}

TEST(BlockCodecTest, PackedRejectsBitWidthOutOfRange) {
  const std::vector<Posting> postings = {{3, 2}, {9, 1}, {10, 5}};
  std::vector<uint8_t> bytes;
  EncodePostingBlock(SegmentCodec::kBitPacked, postings.data(),
                     postings.size(), bytes);
  std::vector<DocId> docs(postings.size());
  std::vector<uint32_t> tfs(postings.size());
  // Packed header layout: u32 first_doc, u8 gap_bits, u8 tf_bits,
  // u16 reserved.
  for (const size_t byte : {size_t{4}, size_t{5}}) {
    std::vector<uint8_t> bad = bytes;
    bad[byte] = 40;  // width > 32
    EXPECT_FALSE(DecodePostingBlock(SegmentCodec::kBitPacked, bad.data(),
                                    bad.size(), postings.size(), 10,
                                    docs.data(), tfs.data())
                     .ok())
        << "corrupt header byte " << byte;
  }
  std::vector<uint8_t> bad = bytes;
  bad[6] = 1;  // reserved bytes must stay zero
  EXPECT_FALSE(DecodePostingBlock(SegmentCodec::kBitPacked, bad.data(),
                                  bad.size(), postings.size(), 10,
                                  docs.data(), tfs.data())
                   .ok());
}

TEST(BlockCodecTest, PackedRejectsSetPaddingBits) {
  // Gaps are all 1 (zero-width gap section) and tfs fit 3 bits, so the tf
  // word has 23 zero padding bits; setting one cannot change any decoded
  // value, so only an explicit padding check can catch it.
  const std::vector<Posting> postings = {{0, 5}, {1, 5}, {2, 6}};
  std::vector<uint8_t> bytes;
  EncodePostingBlock(SegmentCodec::kBitPacked, postings.data(),
                     postings.size(), bytes);
  ASSERT_EQ(bytes.size(), 12u);  // 8B header + one tf word, no gap words
  std::vector<DocId> docs(postings.size());
  std::vector<uint32_t> tfs(postings.size());
  ASSERT_TRUE(DecodePostingBlock(SegmentCodec::kBitPacked, bytes.data(),
                                 bytes.size(), postings.size(), 2,
                                 docs.data(), tfs.data())
                  .ok());
  bytes[11] |= 0x80;  // topmost padding bit of the tf word
  EXPECT_FALSE(DecodePostingBlock(SegmentCodec::kBitPacked, bytes.data(),
                                  bytes.size(), postings.size(), 2,
                                  docs.data(), tfs.data())
                   .ok());
}

TEST(SegmentTest, WriteIsAtomicAndLeavesNoTempFile) {
  const std::string path = TempPath("atomic.moaseg");
  // Pre-existing garbage at the destination must be replaced wholesale.
  {
    std::ofstream out(path, std::ios::binary);
    out << "previous garbage content";
  }
  ASSERT_TRUE(WriteSegment(TestFile(), path, ImpactOptions()).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader.ValueOrDie()->CheckIntegrity().ok());
  std::remove(path.c_str());
}

TEST(SegmentTest, FailedWriteCleansUpTempFile) {
  // A destination that cannot be renamed onto (a directory) must fail
  // without leaving the temp file behind.
  const std::string dir = TempPath("atomic_dir.moaseg");
  std::filesystem::create_directory(dir);
  EXPECT_FALSE(WriteSegment(TestFile(), dir, ImpactOptions()).ok());
  EXPECT_FALSE(std::filesystem::exists(dir + ".tmp"));
  std::filesystem::remove(dir);
}

}  // namespace
}  // namespace moa
