#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace moa {
namespace {

TEST(HistogramTest, CountsAll) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(i % 10 + 0.5);
  EXPECT_EQ(h.total_count(), 100);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(5.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
}

TEST(HistogramTest, CdfMonotone) {
  Rng rng(17);
  std::vector<double> data;
  for (int i = 0; i < 5000; ++i) data.push_back(rng.NextDouble() * 100.0);
  Histogram h = Histogram::FromData(data, 64);
  double prev = -1.0;
  for (double x = 0.0; x <= 100.0; x += 5.0) {
    double c = h.CdfAtValue(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(h.CdfAtValue(100.0), 1.0, 1e-9);
  EXPECT_NEAR(h.CdfAtValue(0.0), 0.0, 1e-9);
}

TEST(HistogramTest, CdfUniformApproximatelyLinear) {
  Rng rng(18);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) data.push_back(rng.NextDouble());
  Histogram h = Histogram::FromData(data, 128);
  EXPECT_NEAR(h.CdfAtValue(0.25), 0.25, 0.02);
  EXPECT_NEAR(h.CdfAtValue(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.CdfAtValue(0.75), 0.75, 0.02);
}

TEST(HistogramTest, ValueWithCountAboveFindsTail) {
  // 1000 uniform values in [0,1): ~100 values above ~0.9.
  Rng rng(19);
  std::vector<double> data;
  for (int i = 0; i < 10000; ++i) data.push_back(rng.NextDouble());
  Histogram h = Histogram::FromData(data, 128);
  const double cutoff = h.ValueWithCountAbove(1000);
  EXPECT_NEAR(cutoff, 0.9, 0.03);
  // Verify against the data itself.
  int above = 0;
  for (double v : data) above += (v >= cutoff) ? 1 : 0;
  EXPECT_NEAR(above, 1000, 150);
}

TEST(HistogramTest, ValueWithCountAboveEdges) {
  std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  Histogram h = Histogram::FromData(data, 4);
  EXPECT_EQ(h.ValueWithCountAbove(100), h.min());
  EXPECT_EQ(h.ValueWithCountAbove(0), h.max());
}

TEST(HistogramTest, EstimateRangeCount) {
  Rng rng(20);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) data.push_back(rng.NextDouble() * 10.0);
  Histogram h = Histogram::FromData(data, 100);
  EXPECT_NEAR(h.EstimateRangeCount(2.0, 4.0), 4000.0, 300.0);
  EXPECT_NEAR(h.EstimateRangeCount(4.0, 2.0), 0.0, 1e-9);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h(0.0, 1.0, 8);
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.CdfAtValue(0.5), 0.0);
  EXPECT_EQ(h.ValueWithCountAbove(5), h.min());
  EXPECT_EQ(h.ValueAtQuantile(0.5), h.min());
  // Every quantile of an empty histogram is min(), never a division by
  // zero — and ToString renders without touching the (empty) counts.
  EXPECT_EQ(h.ValueAtQuantile(0.0), h.min());
  EXPECT_EQ(h.ValueAtQuantile(1.0), h.min());
  EXPECT_FALSE(h.ToString().empty());
}

TEST(HistogramTest, ZeroBucketRequestClampsToOne) {
  // A degenerate bucket request is clamped instead of asserting; the
  // single bucket still counts everything.
  Histogram h(0.0, 1.0, 0);
  h.Add(0.25);
  h.Add(0.75);
  EXPECT_EQ(h.total_count(), 2);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_GE(h.ValueAtQuantile(0.5), h.min());
  EXPECT_LE(h.ValueAtQuantile(0.5), h.max());
  EXPECT_FALSE(h.ToString().empty());
}

TEST(HistogramTest, FromDataEmptyInput) {
  Histogram h = Histogram::FromData({}, 16);
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.95), h.min());
}

TEST(HistogramTest, QuantilesOfUniformData) {
  Rng rng(7);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) data.push_back(rng.NextDouble() * 100.0);
  Histogram h = Histogram::FromData(data, 100);
  EXPECT_NEAR(h.ValueAtQuantile(0.50), 50.0, 3.0);
  EXPECT_NEAR(h.ValueAtQuantile(0.95), 95.0, 3.0);
  EXPECT_NEAR(h.ValueAtQuantile(0.99), 99.0, 3.0);
  // Quantiles are monotone in q and clamped to [min, max].
  EXPECT_LE(h.ValueAtQuantile(0.50), h.ValueAtQuantile(0.95));
  EXPECT_LE(h.ValueAtQuantile(0.95), h.ValueAtQuantile(0.99));
  EXPECT_EQ(h.ValueAtQuantile(-1.0), h.ValueAtQuantile(0.0));
  EXPECT_EQ(h.ValueAtQuantile(2.0), h.max());
}

}  // namespace
}  // namespace moa
