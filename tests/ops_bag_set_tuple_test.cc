#include <gtest/gtest.h>

#include "algebra/evaluator.h"

namespace moa {
namespace {

ExprPtr IntBag(std::initializer_list<int64_t> xs) {
  ValueVec v;
  for (int64_t x : xs) v.push_back(Value::Int(x));
  return Expr::Const(Value::Bag(std::move(v)));
}

ExprPtr IntSet(std::initializer_list<int64_t> xs) {
  ValueVec v;
  for (int64_t x : xs) v.push_back(Value::Int(x));
  return Expr::Const(Value::Set(std::move(v)));
}

Value Eval(const ExprPtr& e) {
  auto r = Evaluate(e);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ValueOrDie();
}

// --------------------------------- BAG ------------------------------------

TEST(BagOpsTest, SelectFiltersByValue) {
  Value v = Eval(Expr::Apply("BAG.select",
                             {IntBag({1, 2, 3, 4, 4, 5}),
                              Expr::Const(Value::Int(2)),
                              Expr::Const(Value::Int(4))}));
  EXPECT_EQ(v.kind(), ValueKind::kBag);
  EXPECT_TRUE(Value::BagEquals(
      v, Value::Bag({Value::Int(2), Value::Int(3), Value::Int(4),
                     Value::Int(4)})));
}

TEST(BagOpsTest, ProjectToListExposesStorageOrder) {
  Value v = Eval(Expr::Apply("BAG.projecttolist", {IntBag({3, 1, 2})}));
  EXPECT_EQ(v, Value::List({Value::Int(3), Value::Int(1), Value::Int(2)}));
}

TEST(BagOpsTest, UnionAllKeepsDuplicates) {
  Value v = Eval(Expr::Apply("BAG.union_all",
                             {IntBag({1, 2}), IntBag({2, 3})}));
  EXPECT_TRUE(Value::BagEquals(
      v, Value::Bag({Value::Int(1), Value::Int(2), Value::Int(2),
                     Value::Int(3)})));
}

TEST(BagOpsTest, CountSumTopn) {
  EXPECT_EQ(Eval(Expr::Apply("BAG.count", {IntBag({1, 1, 1})})).AsInt(), 3);
  EXPECT_DOUBLE_EQ(
      Eval(Expr::Apply("BAG.sum", {IntBag({1, 2, 3})})).AsDouble(), 6.0);
  Value top = Eval(Expr::Apply("BAG.topn",
                               {IntBag({5, 9, 2}), Expr::Const(Value::Int(2))}));
  EXPECT_EQ(top, Value::List({Value::Int(9), Value::Int(5)}));
}

TEST(BagOpsTest, TypeErrors) {
  ExprPtr list = Expr::Const(Value::List({Value::Int(1)}));
  EXPECT_FALSE(Evaluate(Expr::Apply("BAG.count", {list})).ok());
  EXPECT_FALSE(Evaluate(Expr::Apply("BAG.projecttolist", {list})).ok());
}

// --------------------------------- SET ------------------------------------

TEST(SetOpsTest, MakeFromListDeduplicates) {
  ExprPtr list = Expr::Const(
      Value::List({Value::Int(3), Value::Int(1), Value::Int(3)}));
  Value v = Eval(Expr::Apply("SET.make", {list}));
  EXPECT_EQ(v, Value::Set({Value::Int(1), Value::Int(3)}));
}

TEST(SetOpsTest, MakeRejectsScalar) {
  EXPECT_FALSE(
      Evaluate(Expr::Apply("SET.make", {Expr::Const(Value::Int(1))})).ok());
}

TEST(SetOpsTest, UnionIntersectDifference) {
  ExprPtr a = IntSet({1, 2, 3});
  ExprPtr b = IntSet({2, 3, 4});
  EXPECT_EQ(Eval(Expr::Apply("SET.union", {a, b})),
            Value::Set({Value::Int(1), Value::Int(2), Value::Int(3),
                        Value::Int(4)}));
  EXPECT_EQ(Eval(Expr::Apply("SET.intersect", {a, b})),
            Value::Set({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Eval(Expr::Apply("SET.difference", {a, b})),
            Value::Set({Value::Int(1)}));
}

TEST(SetOpsTest, SetAlgebraIdentities) {
  ExprPtr a = IntSet({1, 5, 7});
  ExprPtr empty = IntSet({});
  EXPECT_EQ(Eval(Expr::Apply("SET.union", {a, empty})), Eval(a));
  EXPECT_EQ(Eval(Expr::Apply("SET.intersect", {a, a})), Eval(a));
  EXPECT_EQ(Eval(Expr::Apply("SET.difference", {a, a})), Eval(empty));
}

TEST(SetOpsTest, ContainsBinarySearch) {
  ExprPtr s = IntSet({10, 20, 30});
  EXPECT_EQ(Eval(Expr::Apply("SET.contains", {s, Expr::Const(Value::Int(20))}))
                .AsInt(),
            1);
  EXPECT_EQ(Eval(Expr::Apply("SET.contains", {s, Expr::Const(Value::Int(25))}))
                .AsInt(),
            0);
}

TEST(SetOpsTest, SelectUsesCanonicalOrder) {
  Value v = Eval(Expr::Apply("SET.select",
                             {IntSet({5, 1, 9, 3}), Expr::Const(Value::Int(2)),
                              Expr::Const(Value::Int(6))}));
  EXPECT_EQ(v, Value::Set({Value::Int(3), Value::Int(5)}));
}

TEST(SetOpsTest, Count) {
  EXPECT_EQ(Eval(Expr::Apply("SET.count", {IntSet({1, 1, 2})})).AsInt(), 2);
}

// -------------------------------- TUPLE -----------------------------------

TEST(TupleOpsTest, MakeAndGet) {
  ExprPtr t = Expr::Apply("TUPLE.make2",
                          {Expr::Const(Value::Str("doc")),
                           Expr::Const(Value::Int(12)),
                           Expr::Const(Value::Str("score")),
                           Expr::Const(Value::Double(0.8))});
  Value doc = Eval(Expr::Apply("TUPLE.get", {t, Expr::Const(Value::Str("doc"))}));
  EXPECT_EQ(doc.AsInt(), 12);
  Value score =
      Eval(Expr::Apply("TUPLE.get", {t, Expr::Const(Value::Str("score"))}));
  EXPECT_DOUBLE_EQ(score.AsDouble(), 0.8);
}

TEST(TupleOpsTest, GetMissingFieldFails) {
  ExprPtr t = Expr::Apply("TUPLE.make2",
                          {Expr::Const(Value::Str("a")),
                           Expr::Const(Value::Int(1)),
                           Expr::Const(Value::Str("b")),
                           Expr::Const(Value::Int(2))});
  auto r = Evaluate(Expr::Apply("TUPLE.get", {t, Expr::Const(Value::Str("c"))}));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TupleOpsTest, DuplicateFieldRejected) {
  auto r = Evaluate(Expr::Apply("TUPLE.make2",
                                {Expr::Const(Value::Str("a")),
                                 Expr::Const(Value::Int(1)),
                                 Expr::Const(Value::Str("a")),
                                 Expr::Const(Value::Int(2))}));
  EXPECT_FALSE(r.ok());
}

// ------------------------------ registry ----------------------------------

TEST(RegistryTest, ListsExtensionsAndOps) {
  const ExtensionRegistry& reg = ExtensionRegistry::Default();
  auto exts = reg.Extensions();
  EXPECT_NE(std::find(exts.begin(), exts.end(), "LIST"), exts.end());
  EXPECT_NE(std::find(exts.begin(), exts.end(), "BAG"), exts.end());
  EXPECT_NE(std::find(exts.begin(), exts.end(), "SET"), exts.end());
  EXPECT_NE(std::find(exts.begin(), exts.end(), "TUPLE"), exts.end());
  EXPECT_GE(reg.OpsOfExtension("LIST").size(), 10u);
  EXPECT_EQ(reg.Find("LIST.nonexistent"), nullptr);
  ASSERT_NE(reg.Find("LIST.select"), nullptr);
  EXPECT_TRUE(reg.Find("LIST.select")->props.preserves_order);
  EXPECT_TRUE(reg.Find("LIST.select_sorted")->props.requires_sorted_input);
  EXPECT_TRUE(reg.Find("BAG.select")->props.order_insensitive);
}

TEST(EvaluatorTest, UnknownOperatorFails) {
  auto r = Evaluate(Expr::Apply("LIST.bogus", {IntBag({1})}));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(EvaluatorTest, NullExpressionFails) {
  EXPECT_FALSE(Evaluate(nullptr).ok());
}

TEST(EvaluatorTest, ErrorsPropagateFromChildren) {
  ExprPtr bad = Expr::Apply("LIST.bogus", {Expr::Const(Value::Int(1))});
  ExprPtr root = Expr::Apply("LIST.count", {bad});
  EXPECT_FALSE(Evaluate(root).ok());
}

}  // namespace
}  // namespace moa
