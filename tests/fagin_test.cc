#include "topn/fagin.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "ir/exact_eval.h"
#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;
using testutil::SmallModel;
using testutil::SmallQueries;

/// Safety for TA/FA: exact ranking; tolerate permutation of score ties.
void ExpectExactRanking(const std::vector<ScoredDoc>& got,
                        const std::vector<ScoredDoc>& exact) {
  ASSERT_EQ(got.size(), exact.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, exact[i].score, 1e-9) << "rank " << i;
  }
}

/// Safety for NRA: every returned doc's true score reaches the exact n-th
/// score (set correctness up to ties).
void ExpectTopSet(const std::vector<ScoredDoc>& got,
                  const std::vector<ScoredDoc>& exact,
                  const std::vector<double>& truth_scores) {
  ASSERT_EQ(got.size(), exact.size());
  if (exact.empty()) return;
  const double nth = exact.back().score;
  for (const auto& sd : got) {
    EXPECT_GE(truth_scores[sd.doc] + 1e-9, nth) << "doc " << sd.doc;
  }
}

class FaginTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FaginTest, TaIsExact) {
  const size_t n = GetParam();
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, n);
    auto r = FaginTA(f, SmallModel(), q, n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectExactRanking(r.ValueOrDie().items, exact);
  }
}

TEST_P(FaginTest, FaIsExact) {
  const size_t n = GetParam();
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, n);
    auto r = FaginFA(f, SmallModel(), q, n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectExactRanking(r.ValueOrDie().items, exact);
  }
}

TEST_P(FaginTest, NraReturnsExactTopSet) {
  const size_t n = GetParam();
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, n);
    auto scores = AccumulateScores(f, SmallModel(), q);
    auto r = FaginNRA(f, SmallModel(), q, n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectTopSet(r.ValueOrDie().items, exact, scores);
  }
}

INSTANTIATE_TEST_SUITE_P(Ns, FaginTest, ::testing::Values(1, 5, 10, 50));

TEST(FaginTest, TaStopsEarlyOnSelectiveQueries) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  int early = 0, total = 0;
  for (const Query& q : SmallQueries()) {
    auto r = FaginTA(f, SmallModel(), q, 5);
    ASSERT_TRUE(r.ok());
    early += r.ValueOrDie().stats.stopped_early ? 1 : 0;
    ++total;
  }
  EXPECT_GT(early, total / 2) << "TA should usually stop before exhaustion";
}

TEST(FaginTest, TaReadsFewerPostingsThanExhaustive) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Query& q = SmallQueries()[0];
  int64_t volume = 0;
  for (TermId t : q.terms) volume += f.DocFrequency(t);
  auto r = FaginTA(f, SmallModel(), q, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.ValueOrDie().stats.sorted_accesses, volume);
}

TEST(FaginTest, SortedAccessesGrowWithN) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  const Query& q = SmallQueries()[1];
  int64_t prev = 0;
  for (size_t n : {1, 10, 100}) {
    auto r = FaginTA(f, SmallModel(), q, n);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.ValueOrDie().stats.sorted_accesses, prev);
    prev = r.ValueOrDie().stats.sorted_accesses;
  }
}

TEST(FaginTest, NraDoesNoRandomAccess) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  auto r = FaginNRA(f, SmallModel(), SmallQueries()[2], 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().stats.random_accesses, 0);
  EXPECT_EQ(r.ValueOrDie().stats.cost.random_reads, 0);
}

TEST(FaginTest, TaDoesRandomAccess) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  auto r = FaginTA(f, SmallModel(), SmallQueries()[2], 10);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.ValueOrDie().stats.random_accesses, 0);
}

TEST(FaginTest, RequiresImpactOrders) {
  // A fresh collection without impact orders must be rejected.
  CollectionConfig config;
  config.num_docs = 50;
  config.vocabulary = 100;
  config.seed = 77;
  auto coll = Collection::Generate(config);
  ASSERT_TRUE(coll.ok());
  auto model = MakeBm25(&coll.ValueOrDie().mutable_inverted_file());
  Query q;
  for (TermId t = 0; t < 100; ++t) {
    if (coll.ValueOrDie().inverted_file().DocFrequency(t) > 0) {
      q.terms.push_back(t);
      if (q.terms.size() == 2) break;
    }
  }
  auto r = FaginTA(coll.ValueOrDie().inverted_file(), *model, q, 5);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FaginTest, EmptyQueryGivesEmptyResult) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  Query empty;
  using FileFn = Result<TopNResult> (*)(const InvertedFile&,
                                        const ScoringModel&, const Query&,
                                        size_t, const FaginOptions&);
  for (FileFn fn : {static_cast<FileFn>(&FaginFA),
                    static_cast<FileFn>(&FaginTA),
                    static_cast<FileFn>(&FaginNRA)}) {
    auto r = (*fn)(f, SmallModel(), empty, 10, FaginOptions{});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.ValueOrDie().items.empty());
  }
}

TEST(FaginTest, SingleTermQueryIsExactAndCheap) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  Query q;
  q.terms = {SmallQueries()[0].terms[0]};
  auto exact = ExactTopN(f, SmallModel(), q, 5);
  auto r = FaginTA(f, SmallModel(), q, 5);
  ASSERT_TRUE(r.ok());
  ExpectExactRanking(r.ValueOrDie().items, exact);
  // One list: TA needs at most n + 1 sorted accesses.
  EXPECT_LE(r.ValueOrDie().stats.sorted_accesses,
            static_cast<int64_t>(exact.size()) + 1);
}

}  // namespace
}  // namespace moa
