#include "storage/fragmentation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollection;

TEST(FragmentationTest, PartitionCoversEveryTermExactlyOnce) {
  const InvertedFile& f = SmallCollection().inverted_file();
  Fragmentation frag = Fragmentation::Build(f, FragmentationPolicy{});
  size_t small = 0, large = 0;
  for (TermId t = 0; t < f.num_terms(); ++t) {
    if (frag.in_small(t)) ++small; else ++large;
  }
  EXPECT_EQ(small, frag.term_count(FragmentId::kSmall));
  EXPECT_EQ(large, frag.term_count(FragmentId::kLarge));
  EXPECT_EQ(small + large, f.num_terms());
}

TEST(FragmentationTest, PostingVolumesSumToTotal) {
  const InvertedFile& f = SmallCollection().inverted_file();
  Fragmentation frag = Fragmentation::Build(f, FragmentationPolicy{});
  EXPECT_EQ(frag.postings_volume(FragmentId::kSmall) +
                frag.postings_volume(FragmentId::kLarge),
            f.num_postings());
}

TEST(FragmentationTest, SmallFragmentRespectsVolumeBudget) {
  const InvertedFile& f = SmallCollection().inverted_file();
  FragmentationPolicy policy;
  policy.small_volume_fraction = 0.05;
  Fragmentation frag = Fragmentation::Build(f, policy);
  EXPECT_LE(frag.small_volume_fraction(), 0.05 + 1e-9);
}

TEST(FragmentationTest, ZipfMakesSmallFragmentTermRich) {
  // The paper's Step 1: ~5% of postings volume should cover the vast
  // majority of *distinct* terms on Zipf data.
  const InvertedFile& f = SmallCollection().inverted_file();
  FragmentationPolicy policy;
  policy.small_volume_fraction = 0.05;
  Fragmentation frag = Fragmentation::Build(f, policy);
  // Term share must dwarf the volume share (5%): the whole point of the
  // Zipf split. The exact ratio depends on collection size; >4x is robust.
  EXPECT_GT(frag.small_term_fraction(),
            4.0 * frag.small_volume_fraction());
}

TEST(FragmentationTest, SmallFragmentHoldsTheRareTerms) {
  const InvertedFile& f = SmallCollection().inverted_file();
  Fragmentation frag = Fragmentation::Build(f, FragmentationPolicy{});
  // Max df in the small fragment must not exceed min df in the large one
  // by more than tie effects (equal dfs may split across fragments).
  uint32_t max_small = 0, min_large = UINT32_MAX;
  for (TermId t = 0; t < f.num_terms(); ++t) {
    const uint32_t df = f.DocFrequency(t);
    if (df == 0) continue;
    if (frag.in_small(t)) {
      max_small = std::max(max_small, df);
    } else {
      min_large = std::min(min_large, df);
    }
  }
  EXPECT_LE(max_small, min_large + 1);
}

TEST(FragmentationTest, ZeroBudgetPutsEverythingLarge) {
  const InvertedFile& f = SmallCollection().inverted_file();
  FragmentationPolicy policy;
  policy.small_volume_fraction = 0.0;
  Fragmentation frag = Fragmentation::Build(f, policy);
  // Only df=0 terms can fit a zero budget.
  for (TermId t = 0; t < f.num_terms(); ++t) {
    if (frag.in_small(t)) EXPECT_EQ(f.DocFrequency(t), 0u);
  }
}

TEST(FragmentationTest, FullBudgetPutsEverythingSmall) {
  const InvertedFile& f = SmallCollection().inverted_file();
  FragmentationPolicy policy;
  policy.small_volume_fraction = 1.0;
  Fragmentation frag = Fragmentation::Build(f, policy);
  EXPECT_EQ(frag.term_count(FragmentId::kLarge), 0u);
  EXPECT_NEAR(frag.small_volume_fraction(), 1.0, 1e-9);
}

TEST(FragmentationTest, DfCeilingForcesFrequentTermsLarge) {
  const InvertedFile& f = SmallCollection().inverted_file();
  FragmentationPolicy policy;
  policy.small_volume_fraction = 1.0;  // budget would admit everything
  policy.df_ceiling = 10;
  Fragmentation frag = Fragmentation::Build(f, policy);
  for (TermId t = 0; t < f.num_terms(); ++t) {
    if (f.DocFrequency(t) > 10) EXPECT_FALSE(frag.in_small(t));
  }
}

TEST(FragmentationTest, VolumeSweepMonotone) {
  const InvertedFile& f = SmallCollection().inverted_file();
  double prev_terms = -1.0;
  for (double cut : {0.01, 0.05, 0.10, 0.20, 0.50}) {
    FragmentationPolicy policy;
    policy.small_volume_fraction = cut;
    Fragmentation frag = Fragmentation::Build(f, policy);
    EXPECT_GE(frag.small_term_fraction(), prev_terms);
    prev_terms = frag.small_term_fraction();
  }
}

TEST(FragmentationTest, ToStringMentionsBothFragments) {
  const InvertedFile& f = SmallCollection().inverted_file();
  Fragmentation frag = Fragmentation::Build(f, FragmentationPolicy{});
  const std::string s = frag.ToString();
  EXPECT_NE(s.find("small"), std::string::npos);
  EXPECT_NE(s.find("large"), std::string::npos);
}

}  // namespace
}  // namespace moa
