#include "topn/probabilistic.h"

#include <gtest/gtest.h>

#include "ir/exact_eval.h"
#include "test_util.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;
using testutil::SmallModel;
using testutil::SmallQueries;

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.95), 1.644854, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-4);
}

TEST(InverseNormalCdfTest, MonotoneAndSymmetric) {
  double prev = -1e18;
  for (double p = 0.01; p < 1.0; p += 0.01) {
    double z = InverseNormalCdf(p);
    EXPECT_GT(z, prev);
    prev = z;
    EXPECT_NEAR(z, -InverseNormalCdf(1.0 - p), 1e-6);
  }
}

class ProbabilisticTest : public ::testing::TestWithParam<double> {};

TEST_P(ProbabilisticTest, ExactAtAnyConfidence) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  ProbabilisticOptions opts;
  opts.confidence = GetParam();
  for (const Query& q : SmallQueries()) {
    auto exact = ExactTopN(f, SmallModel(), q, 10);
    auto r = ProbabilisticTopN(f, SmallModel(), q, 10, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const auto& got = r.ValueOrDie().items;
    ASSERT_EQ(got.size(), exact.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].doc, exact[i].doc) << "rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Confidences, ProbabilisticTest,
                         ::testing::Values(0.5, 0.8, 0.95, 0.99));

TEST(ProbabilisticTest, HighConfidenceRestartsLessThanLow) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  auto restarts_at = [&](double confidence) {
    ProbabilisticOptions opts;
    opts.confidence = confidence;
    int restarts = 0;
    for (const Query& q : SmallQueries()) {
      auto r = ProbabilisticTopN(f, SmallModel(), q, 20, opts);
      EXPECT_TRUE(r.ok());
      restarts += r.ValueOrDie().stats.restarts;
    }
    return restarts;
  };
  EXPECT_LE(restarts_at(0.99), restarts_at(0.05) + 1);
}

TEST(ProbabilisticTest, RejectsInvalidConfidence) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  ProbabilisticOptions opts;
  opts.confidence = 1.5;
  EXPECT_FALSE(
      ProbabilisticTopN(f, SmallModel(), SmallQueries()[0], 5, opts).ok());
  opts.confidence = 0.0;
  EXPECT_FALSE(
      ProbabilisticTopN(f, SmallModel(), SmallQueries()[0], 5, opts).ok());
}

TEST(ProbabilisticTest, StopsEarlyOnMostQueries) {
  const InvertedFile& f = SmallCollectionWithImpacts().inverted_file();
  ProbabilisticOptions opts;
  int early = 0;
  for (const Query& q : SmallQueries()) {
    auto r = ProbabilisticTopN(f, SmallModel(), q, 10, opts);
    ASSERT_TRUE(r.ok());
    early += r.ValueOrDie().stats.stopped_early ? 1 : 0;
  }
  EXPECT_GT(early, static_cast<int>(SmallQueries().size()) / 2);
}

}  // namespace
}  // namespace moa
