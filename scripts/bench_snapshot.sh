#!/usr/bin/env bash
# Persisted benchmark trajectory: runs the storage/cursor hot-path bench
# (bench_e14_storage), the end-to-end batch throughput bench
# (bench_e13_throughput), the sharded scatter-gather bench
# (bench_e16_sharding) and the index-lifecycle bench
# (bench_e15_lifecycle), all in tiny mode so the run finishes in
# seconds on CI hardware, and distills the tracked numbers into
# BENCH_cursor.json, BENCH_planner.json, BENCH_shard.json and
# BENCH_lifecycle.json at the repo root.
#
#   $ scripts/bench_snapshot.sh [build-dir] [output.json] [planner.json] \
#       [shard.json] [lifecycle.json]
#
# Commit the refreshed snapshots together with performance PRs;
# scripts/bench_compare.py warns when a fresh run regresses scan
# throughput >10% against the committed snapshot. Tracked numbers:
#   - cursor scan + advance_to throughput per codec (varbyte baseline vs
#     bit-packed, per-posting cursor and block-batch idioms)
#   - on-disk size ratios (MOAIF01 / varbyte / bit-packed)
#   - batch search QPS per strategy (e13)
#   - planner-on vs forced-maxscore QPS per query class (e13; this is
#     also the measurement behind the planner cost constants in
#     src/optimizer/strategy_planner.cc — see CONTRIBUTING.md)
#   - sharded qps/work/span by shard count + shard-skip rate (e16)
#   - durable ingest docs/s, flush throughput, merge win, and the
#     foreground-flush vs background-maintenance ingest ratio (e15)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_cursor.json}"
PLANNER_OUT="${3:-BENCH_planner.json}"
SHARD_OUT="${4:-BENCH_shard.json}"
LIFECYCLE_OUT="${5:-BENCH_lifecycle.json}"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for bench in bench_e14_storage bench_e13_throughput bench_e16_sharding \
             bench_e15_lifecycle; do
  if [[ ! -x "$BUILD_DIR/$bench" ]]; then
    echo "bench_snapshot: $BUILD_DIR/$bench not built" \
         "(configure with MOA_BUILD_BENCHMARKS=ON)" >&2
    exit 1
  fi
done

MOA_BENCH_TINY=1 "$BUILD_DIR/bench_e14_storage" \
  --benchmark_filter='OnDiskSize|Scan|Advance' \
  --benchmark_min_time=0.2 \
  --benchmark_out="$TMP_DIR/e14.json" --benchmark_out_format=json \
  >/dev/null
MOA_BENCH_TINY=1 "$BUILD_DIR/bench_e13_throughput" \
  --benchmark_min_time=0.2 \
  --benchmark_out="$TMP_DIR/e13.json" --benchmark_out_format=json \
  >/dev/null

MOA_BENCH_TINY=1 "$BUILD_DIR/bench_e16_sharding" \
  --benchmark_min_time=0.2 \
  --benchmark_out="$TMP_DIR/e16.json" --benchmark_out_format=json \
  >/dev/null

MOA_BENCH_TINY=1 "$BUILD_DIR/bench_e15_lifecycle" \
  --benchmark_filter='IngestThroughput|FlushLatency|IngestWithMaintenance|QueryAfterMerge' \
  --benchmark_min_time=0.2 \
  --benchmark_out="$TMP_DIR/e15.json" --benchmark_out_format=json \
  >/dev/null

python3 scripts/bench_compare.py \
  --distill "$TMP_DIR/e14.json" "$TMP_DIR/e13.json" >"$OUT"
echo "bench_snapshot: wrote $OUT"
python3 scripts/bench_compare.py \
  --distill-planner "$TMP_DIR/e13.json" >"$PLANNER_OUT"
echo "bench_snapshot: wrote $PLANNER_OUT"
python3 scripts/bench_compare.py \
  --distill-shard "$TMP_DIR/e16.json" >"$SHARD_OUT"
echo "bench_snapshot: wrote $SHARD_OUT"
python3 scripts/bench_compare.py \
  --distill-lifecycle "$TMP_DIR/e15.json" >"$LIFECYCLE_OUT"
echo "bench_snapshot: wrote $LIFECYCLE_OUT"
