#!/usr/bin/env python3
"""Distill and compare the persisted benchmark snapshots
(BENCH_cursor.json, BENCH_planner.json).

Four modes:

  --distill e14.json e13.json
      Reads the Google Benchmark JSON output of bench_e14_storage and
      bench_e13_throughput and prints the distilled snapshot schema to
      stdout (what scripts/bench_snapshot.sh writes to BENCH_cursor.json).

  --distill-planner e13.json
      Reads the bench_e13_throughput output and prints the planner
      snapshot (BENCH_planner.json): batch QPS of the planner-routed
      searches next to their forced-maxscore baselines per query class,
      plus the planned/forced ratios the acceptance criterion tracks.

  --calibration metrics.json
      Reads a metrics-registry JSON dump (example_metrics_dump --json)
      and distills the planner's predicted-vs-observed cost ratio from
      moa_plan_observed_scalar_total / moa_plan_predicted_scalar_total.
      Warns (non-fatally: exit code stays 0) when the drift exceeds 25%
      in either direction — the signal that the cost model's constants
      need re-fitting. Exit code 2 for malformed input or a dump with no
      planner traffic.

  baseline.json current.json
      Compares two distilled snapshots of the same schema and warns
      (non-fatally: exit code stays 0) when any tracked throughput entry
      of `current` regresses more than 10% against `baseline` — and, for
      planner snapshots, when a planned/forced-maxscore ratio falls
      materially below parity. CI points `baseline` at the committed
      snapshot and `current` at a fresh bench_snapshot.sh run. Exit code
      2 is reserved for malformed input, so a broken snapshot never
      masquerades as "no regression".
"""

import json
import sys

SCHEMA = "moa-bench-cursor-v1"
PLANNER_SCHEMA = "moa-bench-planner-v1"
REGRESSION_THRESHOLD = 0.10
CALIBRATION_DRIFT_THRESHOLD = 0.25

# Planner-routed bench -> its forced-maxscore baseline on the same query
# class (bench_e13_throughput names, without the /threads/real_time tail).
PLANNER_PAIRS = {
    "BM_BatchPlanned": "BM_BatchMaxScore",
    "BM_BatchSelectivePlanned": "BM_BatchSelectiveMaxScore",
}

# e14 benchmark name -> (section, key) in the distilled snapshot.
E14_RATES = {
    "BM_ScanRawVectors": ("scan", "raw_vectors"),
    "BM_ScanInMemoryCursor": ("scan", "inmemory_cursor"),
    "BM_ScanSegmentCursorVarbyte": ("scan", "segment_cursor_varbyte"),
    "BM_ScanSegmentCursorBitPacked": ("scan", "segment_cursor_bitpacked"),
    "BM_ScanSegmentBlocksVarbyte": ("scan", "segment_blocks_varbyte"),
    "BM_ScanSegmentBlocksBitPacked": ("scan", "segment_blocks_bitpacked"),
    "BM_AdvanceInMemoryCursor": ("advance", "inmemory_cursor"),
    "BM_AdvanceSegmentCursorVarbyte": ("advance", "segment_cursor_varbyte"),
    "BM_AdvanceSegmentCursorBitPacked": ("advance",
                                         "segment_cursor_bitpacked"),
}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def distill(e14_path, e13_path):
    snapshot = {
        "schema": SCHEMA,
        "mode": "tiny",
        "scan": {},       # postings/second by source + idiom
        "advance": {},    # advance_to probes/second by source
        "size": {},       # on-disk bytes + ratios
        "e13_qps": {},    # end-to-end batch QPS by strategy/threads
    }
    for bench in load(e14_path).get("benchmarks", []):
        name = bench.get("name", "").split("/")[0]
        if name in E14_RATES and "items_per_second" in bench:
            section, key = E14_RATES[name]
            snapshot[section][key] = bench["items_per_second"]
        if name == "BM_OnDiskSize":
            for counter in ("v1_bytes", "v2_bytes", "vb_bytes", "v1_over_v2",
                            "varbyte_over_bitpacked"):
                if counter in bench:
                    snapshot["size"][counter] = bench[counter]
    scan = snapshot["scan"]
    if "segment_cursor_varbyte" in scan and "segment_blocks_bitpacked" in scan:
        # The headline number: new bit-packed block-batch hot path vs the
        # old per-posting varbyte cursor scan.
        scan["bitpacked_blocks_over_varbyte_cursor"] = (
            scan["segment_blocks_bitpacked"] / scan["segment_cursor_varbyte"])
    for bench in load(e13_path).get("benchmarks", []):
        if "qps" in bench:
            snapshot["e13_qps"][bench["name"]] = bench["qps"]
    return snapshot


def distill_planner(e13_path):
    snapshot = {
        "schema": PLANNER_SCHEMA,
        "mode": "tiny",
        # Planner-on and forced-maxscore batch QPS by bench/threads, the
        # quality-target sweep included.
        "qps": {},
        # planned / forced-maxscore per query class, single-threaded: the
        # planner must hold >= ~parity here (it may beat it outright).
        "planned_over_maxscore": {},
    }
    for bench in load(e13_path).get("benchmarks", []):
        name = bench.get("name", "")
        base = name.split("/")[0]
        if "qps" not in bench:
            continue
        if "Planned" in base or base in PLANNER_PAIRS.values():
            snapshot["qps"][name] = bench["qps"]
    qps = snapshot["qps"]
    for planned, forced in PLANNER_PAIRS.items():
        planned_key = f"{planned}/1/real_time"
        forced_key = f"{forced}/1/real_time"
        if qps.get(forced_key):
            label = "mixed" if planned == "BM_BatchPlanned" else "selective"
            snapshot["planned_over_maxscore"][label] = (
                qps.get(planned_key, 0.0) / qps[forced_key])
    return snapshot


def compare_planner(baseline, current):
    """Planner snapshots: QPS entries under the usual 10% rule, plus a
    parity floor on the planned/forced ratios of the *current* run."""
    warnings = 0
    base_qps = baseline.get("qps", {})
    cur_qps = current.get("qps", {})
    for key, base_rate in base_qps.items():
        if key not in cur_qps or not isinstance(base_rate, (int, float)):
            continue
        if base_rate <= 0:
            continue
        drop = 1.0 - cur_qps[key] / base_rate
        if drop > REGRESSION_THRESHOLD:
            warnings += 1
            print(
                f"WARNING: qps.{key} regressed {drop:.1%} "
                f"({base_rate:.3g} -> {cur_qps[key]:.3g} qps)",
                file=sys.stderr)
    for label, ratio in current.get("planned_over_maxscore", {}).items():
        if not isinstance(ratio, (int, float)):
            continue
        if ratio < 1.0 - REGRESSION_THRESHOLD:
            warnings += 1
            print(
                f"WARNING: planner loses to forced maxscore on the {label} "
                f"class (planned/forced = {ratio:.2f})",
                file=sys.stderr)
    return warnings


def calibration(metrics_path):
    """Predicted-vs-observed planner calibration from a registry dump."""
    dump = load(metrics_path)
    totals = {}
    for counter in dump.get("counters", []):
        name = counter.get("name")
        if name in ("moa_plan_predicted_scalar_total",
                    "moa_plan_observed_scalar_total"):
            totals[name] = totals.get(name, 0.0) + float(counter["value"])
    predicted = totals.get("moa_plan_predicted_scalar_total", 0.0)
    observed = totals.get("moa_plan_observed_scalar_total", 0.0)
    if predicted <= 0.0 or observed <= 0.0:
        print(
            "bench_compare: no planner traffic in metrics dump "
            f"(predicted={predicted}, observed={observed})", file=sys.stderr)
        return 2
    ratio = observed / predicted
    drift = abs(ratio - 1.0)
    if drift > CALIBRATION_DRIFT_THRESHOLD:
        print(
            f"WARNING: planner cost model drift {drift:.1%} "
            f"(observed/predicted = {ratio:.3f}; predicted "
            f"{predicted:.4g}, observed {observed:.4g}) — the scalar "
            "cost constants likely need re-fitting (non-fatal)",
            file=sys.stderr)
    else:
        print(
            f"bench_compare: planner calibrated within "
            f"{CALIBRATION_DRIFT_THRESHOLD:.0%} "
            f"(observed/predicted = {ratio:.3f})")
    return 0


def compare(baseline_path, current_path):
    baseline = load(baseline_path)
    current = load(current_path)
    if baseline.get("schema") != current.get("schema"):
        print(
            f"bench_compare: schema mismatch ({baseline.get('schema')} vs "
            f"{current.get('schema')})", file=sys.stderr)
        return 2
    warnings = 0
    if baseline.get("schema") == PLANNER_SCHEMA:
        warnings = compare_planner(baseline, current)
        if warnings:
            print(
                f"bench_compare: {warnings} planner "
                f"entr{'y' if warnings == 1 else 'ies'} regressed vs "
                f"{baseline_path} (non-fatal)", file=sys.stderr)
        else:
            print("bench_compare: planner holds >= ~parity with forced "
                  f"maxscore, no >{REGRESSION_THRESHOLD:.0%} QPS regression "
                  f"vs {baseline_path}")
        return 0
    for section in ("scan", "advance"):
        base = baseline.get(section, {})
        cur = current.get(section, {})
        for key, base_rate in base.items():
            if key not in cur or not isinstance(base_rate, (int, float)):
                continue
            if base_rate <= 0:
                continue
            drop = 1.0 - cur[key] / base_rate
            if drop > REGRESSION_THRESHOLD:
                warnings += 1
                print(
                    f"WARNING: {section}.{key} regressed {drop:.1%} "
                    f"({base_rate:.3g} -> {cur[key]:.3g} items/s)",
                    file=sys.stderr)
    if warnings:
        print(
            f"bench_compare: {warnings} entr{'y' if warnings == 1 else 'ies'}"
            f" regressed >{REGRESSION_THRESHOLD:.0%} vs {baseline_path}"
            " (non-fatal)",
            file=sys.stderr)
    else:
        print(f"bench_compare: no >{REGRESSION_THRESHOLD:.0%} scan/advance"
              f" regression vs {baseline_path}")
    return 0


def main(argv):
    if len(argv) == 4 and argv[1] == "--distill":
        json.dump(distill(argv[2], argv[3]), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    if len(argv) == 3 and argv[1] == "--distill-planner":
        json.dump(distill_planner(argv[2]), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    if len(argv) == 3 and argv[1] == "--calibration":
        return calibration(argv[2])
    if len(argv) == 3:
        return compare(argv[1], argv[2])
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as err:
        print(f"bench_compare: malformed input: {err}", file=sys.stderr)
        sys.exit(2)
