#!/usr/bin/env python3
"""Distill and compare the persisted benchmark snapshots
(BENCH_cursor.json, BENCH_planner.json).

Four modes:

  --distill e14.json e13.json
      Reads the Google Benchmark JSON output of bench_e14_storage and
      bench_e13_throughput and prints the distilled snapshot schema to
      stdout (what scripts/bench_snapshot.sh writes to BENCH_cursor.json).

  --distill-planner e13.json
      Reads the bench_e13_throughput output and prints the planner
      snapshot (BENCH_planner.json): batch QPS of the planner-routed
      searches next to their forced-maxscore baselines per query class,
      plus the planned/forced ratios the acceptance criterion tracks.

  --distill-lifecycle e15.json
      Reads the bench_e15_lifecycle output and prints the lifecycle
      snapshot (BENCH_lifecycle.json): durable ingest docs/second by
      batch size, flush throughput, the merge win, and the headline
      maintenance numbers — ingest-with-auto-maintenance docs/second
      with flushes on the ingest thread (foreground) vs scheduled by
      BackgroundMaintenance on the shared pool (background), plus their
      ratio. The acceptance floor is background >= 1.5x foreground;
      because the overlap needs a second core, the snapshot records the
      runner's CPU count and the comparison only warns about a missed
      floor when the baseline itself met it.

  --distill-shard e16.json
      Reads the bench_e16_sharding output and prints the sharding
      snapshot (BENCH_shard.json): per shard count and query class the
      wall QPS, total cost-scalar work, naive (pruning-off) work,
      critical-path span and shard-skip rate, plus the 4-vs-1 speedup
      ratios the acceptance criterion tracks. Note the hardware caveat
      recorded in the snapshot: on a single-CPU runner the wall ratio
      reflects serialized waves; the span ratio is the intra-query
      parallel speedup available once cores exist.

  --calibration metrics.json
      Reads a metrics-registry JSON dump (example_metrics_dump --json)
      and distills the planner's predicted-vs-observed cost ratio from
      moa_plan_observed_scalar_total / moa_plan_predicted_scalar_total.
      Warns (non-fatally: exit code stays 0) when the drift exceeds 25%
      in either direction — the signal that the cost model's constants
      need re-fitting. Exit code 2 for malformed input or a dump with no
      planner traffic.

  baseline.json current.json
      Compares two distilled snapshots of the same schema and warns
      (non-fatally: exit code stays 0) when any tracked throughput entry
      of `current` regresses more than 10% against `baseline` — and, for
      planner snapshots, when a planned/forced-maxscore ratio falls
      materially below parity. CI points `baseline` at the committed
      snapshot and `current` at a fresh bench_snapshot.sh run. Exit code
      2 is reserved for malformed input, so a broken snapshot never
      masquerades as "no regression".
"""

import json
import os
import sys

SCHEMA = "moa-bench-cursor-v1"
PLANNER_SCHEMA = "moa-bench-planner-v1"
SHARD_SCHEMA = "moa-bench-shard-v1"
LIFECYCLE_SCHEMA = "moa-bench-lifecycle-v1"
REGRESSION_THRESHOLD = 0.10
CALIBRATION_DRIFT_THRESHOLD = 0.25
# Acceptance floor: span(1 shard) / span(4 shards) on the mixed class.
SHARD_SPEEDUP_FLOOR = 1.5
# Acceptance floor: background-maintenance ingest docs/s over
# foreground-flush ingest docs/s (needs >= 2 cores to be reachable).
BACKGROUND_INGEST_FLOOR = 1.5

# bench_e16_sharding benchmark base name -> query class label.
SHARD_CLASSES = {
    "BM_ShardedMixed": "mixed",
    "BM_ShardedSelective": "selective",
}
SHARD_COUNTERS = ("qps", "work_per_query", "naive_work_per_query",
                  "span_per_query", "skip_rate", "postings_skipped_pq")

# Planner-routed bench -> its forced-maxscore baseline on the same query
# class (bench_e13_throughput names, without the /threads/real_time tail).
PLANNER_PAIRS = {
    "BM_BatchPlanned": "BM_BatchMaxScore",
    "BM_BatchSelectivePlanned": "BM_BatchSelectiveMaxScore",
}

# e14 benchmark name -> (section, key) in the distilled snapshot.
E14_RATES = {
    "BM_ScanRawVectors": ("scan", "raw_vectors"),
    "BM_ScanInMemoryCursor": ("scan", "inmemory_cursor"),
    "BM_ScanSegmentCursorVarbyte": ("scan", "segment_cursor_varbyte"),
    "BM_ScanSegmentCursorBitPacked": ("scan", "segment_cursor_bitpacked"),
    "BM_ScanSegmentBlocksVarbyte": ("scan", "segment_blocks_varbyte"),
    "BM_ScanSegmentBlocksBitPacked": ("scan", "segment_blocks_bitpacked"),
    "BM_AdvanceInMemoryCursor": ("advance", "inmemory_cursor"),
    "BM_AdvanceSegmentCursorVarbyte": ("advance", "segment_cursor_varbyte"),
    "BM_AdvanceSegmentCursorBitPacked": ("advance",
                                         "segment_cursor_bitpacked"),
}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def distill(e14_path, e13_path):
    snapshot = {
        "schema": SCHEMA,
        "mode": "tiny",
        "scan": {},       # postings/second by source + idiom
        "advance": {},    # advance_to probes/second by source
        "size": {},       # on-disk bytes + ratios
        "e13_qps": {},    # end-to-end batch QPS by strategy/threads
    }
    for bench in load(e14_path).get("benchmarks", []):
        name = bench.get("name", "").split("/")[0]
        if name in E14_RATES and "items_per_second" in bench:
            section, key = E14_RATES[name]
            snapshot[section][key] = bench["items_per_second"]
        if name == "BM_OnDiskSize":
            for counter in ("v1_bytes", "v2_bytes", "vb_bytes", "v1_over_v2",
                            "varbyte_over_bitpacked"):
                if counter in bench:
                    snapshot["size"][counter] = bench[counter]
    scan = snapshot["scan"]
    if "segment_cursor_varbyte" in scan and "segment_blocks_bitpacked" in scan:
        # The headline number: new bit-packed block-batch hot path vs the
        # old per-posting varbyte cursor scan.
        scan["bitpacked_blocks_over_varbyte_cursor"] = (
            scan["segment_blocks_bitpacked"] / scan["segment_cursor_varbyte"])
    for bench in load(e13_path).get("benchmarks", []):
        if "qps" in bench:
            snapshot["e13_qps"][bench["name"]] = bench["qps"]
    return snapshot


def distill_planner(e13_path):
    snapshot = {
        "schema": PLANNER_SCHEMA,
        "mode": "tiny",
        # Planner-on and forced-maxscore batch QPS by bench/threads, the
        # quality-target sweep included.
        "qps": {},
        # planned / forced-maxscore per query class, single-threaded: the
        # planner must hold >= ~parity here (it may beat it outright).
        "planned_over_maxscore": {},
    }
    for bench in load(e13_path).get("benchmarks", []):
        name = bench.get("name", "")
        base = name.split("/")[0]
        if "qps" not in bench:
            continue
        if "Planned" in base or base in PLANNER_PAIRS.values():
            snapshot["qps"][name] = bench["qps"]
    qps = snapshot["qps"]
    for planned, forced in PLANNER_PAIRS.items():
        planned_key = f"{planned}/1/real_time"
        forced_key = f"{forced}/1/real_time"
        if qps.get(forced_key):
            label = "mixed" if planned == "BM_BatchPlanned" else "selective"
            snapshot["planned_over_maxscore"][label] = (
                qps.get(planned_key, 0.0) / qps[forced_key])
    return snapshot


def distill_shard(e16_path):
    snapshot = {
        "schema": SHARD_SCHEMA,
        "mode": "tiny",
        # On a 1-CPU runner shard waves serialize, so wall qps dips with
        # shard count while `span` (max per-shard work = the parallel
        # wave's critical path) measures the intra-query speedup
        # available once cores exist. Both are recorded on purpose.
        "note": ("wall ratios are from a serialized single-CPU run; "
                 "span ratios are the multi-core critical-path speedup"),
        # classes.<class>.<shards> -> {qps, work_per_query, ...}
        "classes": {},
        # The acceptance ratios at 4 shards vs 1.
        "speedup_4_over_1": {},
        "selective_skip_rate_at_4": 0.0,
    }
    classes = snapshot["classes"]
    for bench in load(e16_path).get("benchmarks", []):
        name = bench.get("name", "")
        parts = name.split("/")
        label = SHARD_CLASSES.get(parts[0])
        if label is None or len(parts) < 2:
            continue
        shards = parts[1]
        entry = {}
        for counter in SHARD_COUNTERS:
            if counter in bench:
                entry[counter] = bench[counter]
        classes.setdefault(label, {})[shards] = entry

    def ratio(label, num_key, den_key, num_shards_a="1", num_shards_b="4"):
        a = classes.get(label, {}).get(num_shards_a, {}).get(num_key)
        b = classes.get(label, {}).get(num_shards_b, {}).get(den_key)
        if a and b:
            return a / b
        return None

    speedups = snapshot["speedup_4_over_1"]
    for label in ("mixed", "selective"):
        span = ratio(label, "span_per_query", "span_per_query")
        if span is not None:
            speedups[f"{label}_span"] = span
        four = classes.get(label, {}).get("4", {})
        one = classes.get(label, {}).get("1", {})
        if one.get("qps") and four.get("qps"):
            speedups[f"{label}_wall"] = four["qps"] / one["qps"]
        if four.get("work_per_query") and four.get("naive_work_per_query"):
            speedups[f"{label}_pruned_over_naive_work"] = (
                four["naive_work_per_query"] / four["work_per_query"])
    snapshot["selective_skip_rate_at_4"] = (
        classes.get("selective", {}).get("4", {}).get("skip_rate", 0.0))
    return snapshot


def distill_lifecycle(e15_path):
    snapshot = {
        "schema": LIFECYCLE_SCHEMA,
        "mode": "tiny",
        # Honest-hardware caveat: the background flush only overlaps
        # ingest when a second core exists to run it; on a single-CPU
        # runner the ratio collapses toward 1.0 and that is the true
        # number for that machine, not a bug in the scheduler.
        "note": ("background/foreground ingest ratio needs >= 2 cores "
                 "to overlap flush with ingest; measured on a runner "
                 "with the recorded cpu count"),
        "cpus": os.cpu_count() or 1,
        "ingest": {},              # docs/s by AddDocuments batch size
        "flush": {},               # docs/s through Flush by buffered docs
        "maintenance_ingest": {},  # docs/s: foreground vs background flush
        "background_over_foreground": None,
        "frag_over_merged": None,
    }
    for bench in load(e15_path).get("benchmarks", []):
        parts = bench.get("name", "").split("/")
        base = parts[0]
        if "items_per_second" in bench and len(parts) >= 2:
            if base == "BM_IngestThroughput":
                snapshot["ingest"][parts[1]] = bench["items_per_second"]
            elif base == "BM_FlushLatency":
                snapshot["flush"][parts[1]] = bench["items_per_second"]
            elif base == "BM_IngestWithMaintenance":
                mode = "background" if parts[1] == "1" else "foreground"
                snapshot["maintenance_ingest"][mode] = (
                    bench["items_per_second"])
        if base == "BM_QueryAfterMerge" and "frag_over_merged" in bench:
            snapshot["frag_over_merged"] = bench["frag_over_merged"]
    maintenance = snapshot["maintenance_ingest"]
    if maintenance.get("foreground"):
        snapshot["background_over_foreground"] = (
            maintenance.get("background", 0.0) / maintenance["foreground"])
    return snapshot


def compare_lifecycle(baseline, current):
    """Lifecycle snapshots: throughput entries under the usual 10% rule,
    plus the background-ingest floor on the *current* run — demanded
    only when the baseline machine itself reached it, so a single-CPU
    runner comparing against a multi-core snapshot warns about its
    hardware, not about a scheduler regression."""
    warnings = 0
    for section in ("ingest", "flush", "maintenance_ingest"):
        base = baseline.get(section, {})
        cur = current.get(section, {})
        for key, base_rate in base.items():
            cur_rate = cur.get(key)
            if not isinstance(base_rate, (int, float)) or base_rate <= 0:
                continue
            if not isinstance(cur_rate, (int, float)):
                continue
            drop = 1.0 - cur_rate / base_rate
            if drop > REGRESSION_THRESHOLD:
                warnings += 1
                print(
                    f"WARNING: {section}.{key} regressed {drop:.1%} "
                    f"({base_rate:.3g} -> {cur_rate:.3g} docs/s)",
                    file=sys.stderr)
    base_ratio = baseline.get("background_over_foreground")
    cur_ratio = current.get("background_over_foreground")
    floor_applies = (isinstance(base_ratio, (int, float)) and
                     base_ratio >= BACKGROUND_INGEST_FLOOR)
    if not isinstance(cur_ratio, (int, float)):
        warnings += 1
        print("WARNING: background/foreground ingest ratio missing from "
              "current lifecycle snapshot", file=sys.stderr)
    elif floor_applies and cur_ratio < BACKGROUND_INGEST_FLOOR:
        warnings += 1
        print(
            f"WARNING: background-maintenance ingest fell to "
            f"{cur_ratio:.2f}x foreground (floor "
            f"{BACKGROUND_INGEST_FLOOR}x; baseline {base_ratio:.2f}x on "
            f"{baseline.get('cpus', '?')} cpus, current run on "
            f"{current.get('cpus', '?')} cpus)", file=sys.stderr)
    return warnings


def compare_shard(baseline, current):
    """Sharding snapshots: QPS entries under the usual 10% rule, plus the
    acceptance floors on the *current* run — mixed span speedup >= 1.5x
    at 4 shards and a nonzero selective shard-skip rate."""
    warnings = 0
    for label, base_by_shards in baseline.get("classes", {}).items():
        cur_by_shards = current.get("classes", {}).get(label, {})
        for shards, base_entry in base_by_shards.items():
            base_rate = base_entry.get("qps")
            cur_rate = cur_by_shards.get(shards, {}).get("qps")
            if not base_rate or not cur_rate:
                continue
            drop = 1.0 - cur_rate / base_rate
            if drop > REGRESSION_THRESHOLD:
                warnings += 1
                print(
                    f"WARNING: {label}/{shards} shards qps regressed "
                    f"{drop:.1%} ({base_rate:.3g} -> {cur_rate:.3g} qps)",
                    file=sys.stderr)
    span = current.get("speedup_4_over_1", {}).get("mixed_span")
    if not isinstance(span, (int, float)) or span < SHARD_SPEEDUP_FLOOR:
        warnings += 1
        print(
            f"WARNING: mixed-class span speedup at 4 shards is "
            f"{span if span is not None else 'missing'} "
            f"(floor {SHARD_SPEEDUP_FLOOR}x)", file=sys.stderr)
    skip_rate = current.get("selective_skip_rate_at_4", 0.0)
    if not isinstance(skip_rate, (int, float)) or skip_rate <= 0.0:
        warnings += 1
        print(
            "WARNING: selective-class shard-skip rate at 4 shards is zero "
            "— bound-aware gather is not pruning", file=sys.stderr)
    return warnings


def compare_planner(baseline, current):
    """Planner snapshots: QPS entries under the usual 10% rule, plus a
    parity floor on the planned/forced ratios of the *current* run."""
    warnings = 0
    base_qps = baseline.get("qps", {})
    cur_qps = current.get("qps", {})
    for key, base_rate in base_qps.items():
        if key not in cur_qps or not isinstance(base_rate, (int, float)):
            continue
        if base_rate <= 0:
            continue
        drop = 1.0 - cur_qps[key] / base_rate
        if drop > REGRESSION_THRESHOLD:
            warnings += 1
            print(
                f"WARNING: qps.{key} regressed {drop:.1%} "
                f"({base_rate:.3g} -> {cur_qps[key]:.3g} qps)",
                file=sys.stderr)
    for label, ratio in current.get("planned_over_maxscore", {}).items():
        if not isinstance(ratio, (int, float)):
            continue
        if ratio < 1.0 - REGRESSION_THRESHOLD:
            warnings += 1
            print(
                f"WARNING: planner loses to forced maxscore on the {label} "
                f"class (planned/forced = {ratio:.2f})",
                file=sys.stderr)
    return warnings


def calibration(metrics_path):
    """Predicted-vs-observed planner calibration from a registry dump."""
    dump = load(metrics_path)
    totals = {}
    for counter in dump.get("counters", []):
        name = counter.get("name")
        if name in ("moa_plan_predicted_scalar_total",
                    "moa_plan_observed_scalar_total"):
            totals[name] = totals.get(name, 0.0) + float(counter["value"])
    predicted = totals.get("moa_plan_predicted_scalar_total", 0.0)
    observed = totals.get("moa_plan_observed_scalar_total", 0.0)
    if predicted <= 0.0 or observed <= 0.0:
        print(
            "bench_compare: no planner traffic in metrics dump "
            f"(predicted={predicted}, observed={observed})", file=sys.stderr)
        return 2
    ratio = observed / predicted
    drift = abs(ratio - 1.0)
    if drift > CALIBRATION_DRIFT_THRESHOLD:
        print(
            f"WARNING: planner cost model drift {drift:.1%} "
            f"(observed/predicted = {ratio:.3f}; predicted "
            f"{predicted:.4g}, observed {observed:.4g}) — the scalar "
            "cost constants likely need re-fitting (non-fatal)",
            file=sys.stderr)
    else:
        print(
            f"bench_compare: planner calibrated within "
            f"{CALIBRATION_DRIFT_THRESHOLD:.0%} "
            f"(observed/predicted = {ratio:.3f})")
    return 0


def compare(baseline_path, current_path):
    baseline = load(baseline_path)
    current = load(current_path)
    if baseline.get("schema") != current.get("schema"):
        print(
            f"bench_compare: schema mismatch ({baseline.get('schema')} vs "
            f"{current.get('schema')})", file=sys.stderr)
        return 2
    warnings = 0
    if baseline.get("schema") == SHARD_SCHEMA:
        warnings = compare_shard(baseline, current)
        if warnings:
            print(
                f"bench_compare: {warnings} sharding "
                f"entr{'y' if warnings == 1 else 'ies'} regressed vs "
                f"{baseline_path} (non-fatal)", file=sys.stderr)
        else:
            print(
                "bench_compare: sharded span speedup holds >= "
                f"{SHARD_SPEEDUP_FLOOR}x on mixed, selective skip rate "
                f"nonzero, no >{REGRESSION_THRESHOLD:.0%} QPS regression vs "
                f"{baseline_path}")
        return 0
    if baseline.get("schema") == LIFECYCLE_SCHEMA:
        warnings = compare_lifecycle(baseline, current)
        if warnings:
            print(
                f"bench_compare: {warnings} lifecycle "
                f"entr{'y' if warnings == 1 else 'ies'} regressed vs "
                f"{baseline_path} (non-fatal)", file=sys.stderr)
        else:
            ratio = current.get("background_over_foreground")
            shown = f"{ratio:.2f}x" if isinstance(ratio, (int, float)) \
                else "n/a"
            print(
                f"bench_compare: background-maintenance ingest at {shown} "
                f"foreground, no >{REGRESSION_THRESHOLD:.0%} throughput "
                f"regression vs {baseline_path}")
        return 0
    if baseline.get("schema") == PLANNER_SCHEMA:
        warnings = compare_planner(baseline, current)
        if warnings:
            print(
                f"bench_compare: {warnings} planner "
                f"entr{'y' if warnings == 1 else 'ies'} regressed vs "
                f"{baseline_path} (non-fatal)", file=sys.stderr)
        else:
            print("bench_compare: planner holds >= ~parity with forced "
                  f"maxscore, no >{REGRESSION_THRESHOLD:.0%} QPS regression "
                  f"vs {baseline_path}")
        return 0
    for section in ("scan", "advance"):
        base = baseline.get(section, {})
        cur = current.get(section, {})
        for key, base_rate in base.items():
            if key not in cur or not isinstance(base_rate, (int, float)):
                continue
            if base_rate <= 0:
                continue
            drop = 1.0 - cur[key] / base_rate
            if drop > REGRESSION_THRESHOLD:
                warnings += 1
                print(
                    f"WARNING: {section}.{key} regressed {drop:.1%} "
                    f"({base_rate:.3g} -> {cur[key]:.3g} items/s)",
                    file=sys.stderr)
    if warnings:
        print(
            f"bench_compare: {warnings} entr{'y' if warnings == 1 else 'ies'}"
            f" regressed >{REGRESSION_THRESHOLD:.0%} vs {baseline_path}"
            " (non-fatal)",
            file=sys.stderr)
    else:
        print(f"bench_compare: no >{REGRESSION_THRESHOLD:.0%} scan/advance"
              f" regression vs {baseline_path}")
    return 0


def main(argv):
    if len(argv) == 4 and argv[1] == "--distill":
        json.dump(distill(argv[2], argv[3]), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    if len(argv) == 3 and argv[1] == "--distill-planner":
        json.dump(distill_planner(argv[2]), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    if len(argv) == 3 and argv[1] == "--distill-shard":
        json.dump(distill_shard(argv[2]), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    if len(argv) == 3 and argv[1] == "--distill-lifecycle":
        json.dump(distill_lifecycle(argv[2]), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    if len(argv) == 3 and argv[1] == "--calibration":
        return calibration(argv[2])
    if len(argv) == 3:
        return compare(argv[1], argv[2])
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as err:
        print(f"bench_compare: malformed input: {err}", file=sys.stderr)
        sys.exit(2)
