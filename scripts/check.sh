#!/usr/bin/env bash
# Tier-1 verify pipeline: configure, build everything, run the test suite.
#   $ scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)"
