#!/usr/bin/env bash
# Tier-1 verify pipeline: configure, build everything, run the test suite.
#   $ scripts/check.sh [build-dir]
#
# CI knobs (all optional):
#   MOA_CMAKE_ARGS         extra -D flags for configure, e.g. "-DMOA_TSAN=ON"
#   MOA_CTEST_ARGS         extra ctest flags, e.g. "-R 'search_batch|thread_pool'"
#   MOA_SEGMENT_ROUNDTRIP  "1" re-runs the MOAIF02 round-trip explicitly:
#                          build collection -> write segment -> mmap reopen
#                          -> search-batch parity over the compressed index
#                          (the ASan job sets this so decode over-reads fail
#                          loudly even when MOA_CTEST_ARGS filters the suite)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# shellcheck disable=SC2086  # word splitting of the arg strings is the point
cmake -B "$BUILD_DIR" -S . ${MOA_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
# --no-tests=error: a filter that matches nothing (or a missing GTest)
# must fail the gate, not silently pass it.
# shellcheck disable=SC2086
ctest --output-on-failure --no-tests=error -j"$(nproc)" ${MOA_CTEST_ARGS:-}

if [[ "${MOA_SEGMENT_ROUNDTRIP:-}" == "1" ]]; then
  ctest --output-on-failure --no-tests=error -R 'segment_parity|segment_test'
fi
