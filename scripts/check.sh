#!/usr/bin/env bash
# Tier-1 verify pipeline: configure, build everything, run the test suite.
#   $ scripts/check.sh [build-dir]
#
# CI knobs (all optional):
#   MOA_CMAKE_ARGS         extra -D flags for configure, e.g. "-DMOA_TSAN=ON"
#   MOA_CTEST_ARGS         extra ctest flags, e.g. "-R 'search_batch|thread_pool'"
#   MOA_FUZZ_ITERS         iterations for the randomized differential
#                          lifecycle harness (tests labeled `fuzz`).
#                          Unset = the fixed-seed CI default. Inherited by
#                          the main ctest pass, e.g.
#                          MOA_FUZZ_ITERS=100 scripts/check.sh; when
#                          MOA_CTEST_ARGS filtered that pass, an explicit
#                          `ctest -L fuzz` re-drive runs afterwards.
#   MOA_CODEC              restrict the codec-parameterized suites
#                          (segment_test, posting_cursor_test) to one
#                          payload codec: "varbyte" or "bit-packed".
#                          The env var is inherited by the test
#                          processes; non-matching parameterizations
#                          GTEST_SKIP. Unset = both codecs run (the CI
#                          default — keep it that way in CI).
#   MOA_SEGMENT_ROUNDTRIP  "1" guarantees the on-disk round-trips ran:
#                          MOAIF02 write -> mmap reopen -> search-batch
#                          parity, plus the catalog lifecycle (flush /
#                          merge / manifest recovery and the
#                          incremental-vs-fresh parity suite).
#                          Only triggers an extra ctest pass when
#                          MOA_CTEST_ARGS filtered the main run; an
#                          unfiltered run (e.g. the ASan job) already
#                          covers both segment suites once.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# shellcheck disable=SC2086  # word splitting of the arg strings is the point
cmake -B "$BUILD_DIR" -S . ${MOA_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
# --no-tests=error: a filter that matches nothing (or a missing GTest)
# must fail the gate, not silently pass it.
# shellcheck disable=SC2086
ctest --output-on-failure --no-tests=error -j"$(nproc)" ${MOA_CTEST_ARGS:-}

if [[ "${MOA_SEGMENT_ROUNDTRIP:-}" == "1" && -n "${MOA_CTEST_ARGS:-}" ]]; then
  # Only needed when MOA_CTEST_ARGS filtered the main run above; an
  # unfiltered run already executed these suites once.
  ctest --output-on-failure --no-tests=error \
    -R 'segment_parity|segment_test|catalog_test|catalog_parity'
fi

if [[ -n "${MOA_FUZZ_ITERS:-}" && -n "${MOA_CTEST_ARGS:-}" ]]; then
  # Long-run knob: the env var is inherited by the test processes, so an
  # unfiltered main pass already ran the fuzz suites at this count; only
  # re-drive them when MOA_CTEST_ARGS filtered them out above.
  export MOA_FUZZ_ITERS
  ctest --output-on-failure --no-tests=error -L fuzz
fi
