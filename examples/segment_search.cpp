// Compressed segment storage end to end: build a collection, persist it
// as a block-compressed segment (the writer's default codec — bit-packed
// MOAIF03), memory-map it back and serve queries straight out of the
// compressed blocks.
//
//   $ ./example_segment_search [segment-path]
//
// Prints the compression ratio against the raw MOAIF01 dump, the
// open-for-query time of both paths, and demonstrates that retrieval
// over the mmap-backed segment is bit-identical to the in-memory index.
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/timer.h"
#include "engine/database.h"
#include "ir/query_gen.h"
#include "storage/io.h"
#include "storage/segment/segment_writer.h"

using namespace moa;

int main(int argc, char** argv) {
  const std::string segment_path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "example.moaseg")
                     .string();
  const std::string raw_path = segment_path + ".moaif01";

  DatabaseConfig config;
  config.collection.num_docs = 10000;
  config.collection.vocabulary = 15000;
  config.collection.mean_doc_length = 120;
  config.collection.seed = 1234;
  config.fragmentation.small_volume_fraction = 0.05;
  auto db = MmDatabase::Open(config);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  MmDatabase& database = *db.ValueOrDie();

  // Persist both formats and compare their footprint.
  if (Status s = database.SaveSegment(segment_path); !s.ok()) {
    std::fprintf(stderr, "save segment: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = WriteInvertedFile(database.file(), raw_path); !s.ok()) {
    std::fprintf(stderr, "save raw: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto raw_bytes = std::filesystem::file_size(raw_path);
  const auto segment_bytes = std::filesystem::file_size(segment_path);
  const char* fmt = SegmentFormatName(SegmentWriterOptions().codec);
  std::printf("on disk:   MOAIF01 %8ju B   %s %8ju B   (%.2fx smaller)\n",
              static_cast<uintmax_t>(raw_bytes), fmt,
              static_cast<uintmax_t>(segment_bytes),
              static_cast<double>(raw_bytes) /
                  static_cast<double>(segment_bytes));

  // Cold start: rebuild-from-dump vs mmap + directory validation. The
  // segment was written by this very process, the documented trusted
  // provenance for skipping the attach-time payload scan — with the
  // default verify_payload the attach would decode every block once and
  // the comparison would no longer measure the mmap path.
  WallTimer rebuild_timer;
  if (!ReadInvertedFile(raw_path).ok()) return 1;
  const double rebuild_ms = rebuild_timer.ElapsedMillis();
  AttachSegmentOptions trusted;
  trusted.verify_payload = false;
  WallTimer attach_timer;
  if (Status s = database.AttachSegment(segment_path, trusted); !s.ok()) {
    std::fprintf(stderr, "attach: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("open:      MOAIF01 rebuild %.2f ms   %s mmap %.3f ms\n",
              rebuild_ms, fmt, attach_timer.ElapsedMillis());

  // Same queries over the in-memory lists and over the mapped segment.
  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 16;
  qconfig.terms_per_query = 4;
  qconfig.distribution = QueryTermDistribution::kMixed;
  qconfig.seed = 99;
  auto queries = GenerateQueries(database.collection(), qconfig);
  if (!queries.ok()) return 1;

  QueryRequest request;
  request.n = 5;
  request.options.strategy = PhysicalStrategy::kMaxScore;
  size_t identical = 0;
  for (const Query& q : queries.ValueOrDie()) {
    request.query = q;
    auto mapped = database.Search(request);
    if (!mapped.ok()) {
      std::fprintf(stderr, "search: %s\n",
                   mapped.status().ToString().c_str());
      return 1;
    }
    database.DetachSegment();
    auto in_memory = database.Search(request);
    // Reattaching the segment we already attached above: skip the
    // per-query payload rescan.
    if (Status s = database.AttachSegment(segment_path, trusted); !s.ok()) {
      return 1;
    }
    if (!in_memory.ok()) return 1;
    const auto& a = mapped.ValueOrDie().top.items;
    const auto& b = in_memory.ValueOrDie().top.items;
    identical += (a == b) ? 1 : 0;
  }
  std::printf("maxscore over mmap vs in-memory: %zu/%zu rankings identical\n",
              identical, queries.ValueOrDie().size());

  request.query = queries.ValueOrDie().front();
  auto result = database.Search(request);
  if (!result.ok()) return 1;
  std::printf("top-%zu for query 0 (served from the compressed segment):\n",
              request.n);
  for (const ScoredDoc& d : result.ValueOrDie().top.items) {
    std::printf("  doc %6u  score %.4f\n", d.doc, d.score);
  }

  std::filesystem::remove(raw_path);
  std::filesystem::remove(segment_path);
  return identical == queries.ValueOrDie().size() ? 0 : 1;
}
