// Quickstart: open an in-memory MM database, run a top-10 query with the
// cost-based optimizer, inspect the plan and the statistics.
//
//   $ ./example_quickstart             # cost-based strategy choice
//   $ ./example_quickstart fagin_ta    # force a strategy by name
#include <cstdio>

#include "engine/database.h"

using namespace moa;

int main(int argc, char** argv) {
  // Optional argv[1]: force a strategy by its registry name.
  std::optional<PhysicalStrategy> forced;
  if (argc > 1) {
    forced = StrategyFromName(argv[1]);
    if (!forced.has_value()) {
      std::fprintf(stderr, "unknown strategy '%s'; registered:\n", argv[1]);
      for (PhysicalStrategy s : AllStrategies()) {
        std::fprintf(stderr, "  %s\n", StrategyName(s));
      }
      return 1;
    }
  }
  // 1. Open a database over a synthetic Zipf collection (the library's
  //    stand-in for TREC-FT; see DESIGN.md §1) with 5% fragmentation.
  DatabaseConfig config;
  config.collection.num_docs = 10000;
  config.collection.vocabulary = 20000;
  config.collection.mean_doc_length = 150;
  config.collection.seed = 7;
  config.fragmentation.small_volume_fraction = 0.05;
  config.scoring = ScoringModelKind::kBm25;

  auto db_or = MmDatabase::Open(config);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).ValueOrDie();
  std::printf("collection: %zu docs, %zu terms, %lld postings\n",
              db->file().num_docs(), db->file().num_terms(),
              static_cast<long long>(db->file().num_postings()));
  std::printf("%s\n\n", db->fragmentation().ToString().c_str());

  // 2. Generate a small query workload.
  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 3;
  qconfig.terms_per_query = 4;
  qconfig.distribution = QueryTermDistribution::kMixed;
  auto queries = GenerateQueries(db->collection(), qconfig).ValueOrDie();

  // 3. Search through the planner (or the forced strategy) and show the
  //    plan: the ExplainReport lists every candidate's predicted cost.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    QueryRequest request;
    request.query = queries[qi];
    request.n = 10;
    request.options.strategy = forced;
    std::printf("--- query %zu (terms:", qi);
    for (TermId t : queries[qi].terms) std::printf(" %u", t);
    std::printf(")\n");

    std::printf("%s",
                db->ExplainSearch(request).ValueOrDie().ToString().c_str());
    auto result = db->Search(request).ValueOrDie();
    std::printf("executed %s (%s) in %.2f ms, stats %s\n",
                StrategyName(result.strategy),
                result.planned ? "planned" : "forced", result.wall_millis,
                result.top.stats.ToString().c_str());
    for (size_t i = 0; i < result.top.items.size(); ++i) {
      std::printf("  #%zu  doc %-6u score %.4f\n", i + 1,
                  result.top.items[i].doc, result.top.items[i].score);
    }
    std::printf("\n");
  }
  return 0;
}
