// Integrated content + alphanumeric query — the workload the paper's
// abstract names as its main research interest. Ranks documents by content
// score while restricting to an attribute range (a "publication date"),
// and shows the filter-first / rank-first plan crossover.
#include <cstdio>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/hybrid.h"

using namespace moa;

int main() {
  DatabaseConfig config;
  config.collection.num_docs = 15000;
  config.collection.vocabulary = 25000;
  config.collection.seed = 808;
  auto db = MmDatabase::Open(config).ValueOrDie();

  // Synthetic per-document attribute: "days since epoch" in [0, 100).
  Rng rng(404);
  std::vector<double> date(db->file().num_docs());
  for (auto& v : date) v = rng.NextDouble() * 100.0;

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 1;
  qconfig.terms_per_query = 4;
  qconfig.distribution = QueryTermDistribution::kMixed;
  Query q = GenerateQueries(db->collection(), qconfig).ValueOrDie()[0];

  std::printf("query: SELECT doc ORDER BY score DESC WHERE lo<=date<=hi "
              "STOP AFTER 10\n\n");
  std::printf("%-22s %-14s %-12s %-10s %-8s\n", "predicate", "auto plan",
              "work", "restarts", "results");
  for (auto [lo, hi] : {std::pair{0.0, 100.0}, {25.0, 75.0}, {40.0, 45.0},
                        {10.0, 10.5}}) {
    AttributePredicate pred{lo, hi};
    HybridOptions opts;  // kAuto
    const HybridPlan plan = ChooseHybridPlan(date, pred, opts);
    auto r = HybridTopN(db->file(), db->model(), q, date, pred, 10, opts)
                 .ValueOrDie();
    char label[64];
    std::snprintf(label, sizeof(label), "[%.1f, %.1f]", lo, hi);
    std::printf("%-22s %-14s %-12.0f %-10d %-8zu\n", label,
                plan == HybridPlan::kRankFirst ? "rank-first" : "filter-first",
                r.stats.cost.Scalar(), r.stats.restarts, r.items.size());
  }

  std::printf(
      "\nwide predicates -> rank-first (attribute probed only for the "
      "ranked prefix);\nnarrow predicates -> filter-first (avoid fruitless "
      "rank-then-filter restarts).\n");
  return 0;
}
