// Drives a mixed workload through every instrumented layer and dumps the
// metrics registry — the executable side of the observability layer and
// the binary CI diffs the metric-name inventory against docs/metrics.txt.
//
//   $ ./example_metrics_dump [--json | --prometheus | --names] [catalog-dir]
//
// --prometheus (default) renders the text exposition, --json the single
// JSON object, --names the sorted metric-family inventory (one per
// line). The workload touches: planned + forced static searches (query
// counters, latency histogram, planner predicted-vs-observed), a
// SearchBatch (batch counters), the catalog lifecycle ingest → flush →
// delete → merge (flush/merge counters + gauges), forced sparse probes
// (sparse-cache hits/misses), and one deliberately failing
// SegmentReader::Open (failure counter).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "ir/query_gen.h"
#include "obs/metrics.h"
#include "storage/segment/segment_reader.h"

using namespace moa;

namespace {

DocTerms SynthDoc(Rng& rng, uint32_t vocab) {
  std::map<TermId, uint32_t> terms;
  while (terms.size() < 20) {
    terms.emplace(static_cast<TermId>(rng.Uniform(vocab)),
                  1 + static_cast<uint32_t>(rng.Uniform(3)));
  }
  return DocTerms(terms.begin(), terms.end());
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Output { kPrometheus, kJson, kNames };
  Output output = Output::kPrometheus;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      output = Output::kJson;
    } else if (std::strcmp(argv[i], "--prometheus") == 0) {
      output = Output::kPrometheus;
    } else if (std::strcmp(argv[i], "--names") == 0) {
      output = Output::kNames;
    } else {
      dir = argv[i];
    }
  }
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "metrics_dump_catalog")
              .string();
  }
  std::filesystem::remove_all(dir);

  DatabaseConfig config;
  config.collection.num_docs = 3000;
  config.collection.vocabulary = 6000;
  config.collection.mean_doc_length = 80;
  config.collection.seed = 4711;
  config.catalog_dir = dir;
  auto opened = MmDatabase::Open(config);
  if (!opened.ok()) return Fail("open", opened.status());
  MmDatabase& db = *opened.ValueOrDie();

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 12;
  qconfig.terms_per_query = 4;
  qconfig.seed = 7;
  const std::vector<Query> queries =
      GenerateQueries(db.collection(), qconfig).ValueOrDie();

  // 1. Static searches, planned and forced: per-strategy query counters,
  //    latency observations, planner predicted-vs-observed scalars.
  for (const Query& query : queries) {
    QueryRequest planned;
    planned.query = query;
    if (auto r = db.Search(planned); !r.ok()) return Fail("search", r.status());
    QueryRequest forced = planned;
    forced.options.strategy = PhysicalStrategy::kHeap;
    if (auto r = db.Search(forced); !r.ok()) return Fail("forced", r.status());
  }

  // Forced sparse probes populate the sparse-index cache (misses on the
  // first pass, hits on the second).
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < 4; ++i) {
      QueryRequest sparse;
      sparse.query = queries[i];
      sparse.options.strategy = PhysicalStrategy::kQualitySwitchSparse;
      sparse.options.quality_target = 0.0;
      if (auto r = db.Search(sparse); !r.ok()) {
        return Fail("sparse", r.status());
      }
    }
  }

  // 2. One batch: batch counters + wall-time histogram.
  std::vector<QueryRequest> batch;
  for (const Query& query : queries) batch.push_back(QueryRequest{query});
  if (auto r = db.SearchBatch(batch, /*parallelism=*/4); !r.ok()) {
    return Fail("batch", r.status());
  }

  // 3. Catalog lifecycle: ingest → flush → delete → ingest → flush →
  //    merge exercises flush/merge counters, bytes written and the
  //    segment/live-docs/tombstone-density gauges.
  Rng rng(2026);
  std::vector<DocTerms> fresh;
  for (int i = 0; i < 400; ++i) fresh.push_back(SynthDoc(rng, 6000));
  if (auto r = db.AddDocuments(fresh); !r.ok()) return Fail("add", r.status());
  if (Status s = db.Flush(); !s.ok()) return Fail("flush", s);
  if (Status s = db.DeleteDocument(0); !s.ok()) return Fail("delete", s);
  std::vector<DocTerms> more;
  for (int i = 0; i < 200; ++i) more.push_back(SynthDoc(rng, 6000));
  if (auto r = db.AddDocuments(more); !r.ok()) return Fail("add2", r.status());
  if (Status s = db.Flush(); !s.ok()) return Fail("flush2", s);
  if (auto r = db.Merge(); !r.ok()) return Fail("merge", r.status());
  for (const Query& query : queries) {
    if (auto r = db.Search(QueryRequest{query}); !r.ok()) {
      return Fail("dynamic search", r.status());
    }
  }

  // 3b. Background maintenance: a second database with the maintenance
  //     loops attached. Ingest past the flush trigger lets the scheduler
  //     do the flushing/merging on the shared pool — registering the
  //     moa_bg_* counters — and WaitForMaintenance drains the jobs so
  //     the dump below is stable.
  {
    DatabaseConfig bg_config = config;
    bg_config.collection.num_docs = 400;
    bg_config.catalog_dir = dir + "_bg";
    bg_config.background_maintenance = true;
    bg_config.flush_trigger_docs = 64;
    bg_config.merge_trigger_segments = 3;
    bg_config.merge_fanin = 2;
    std::filesystem::remove_all(bg_config.catalog_dir);
    auto bg = MmDatabase::Open(bg_config);
    if (!bg.ok()) return Fail("bg open", bg.status());
    for (int i = 0; i < 300; ++i) {
      if (auto r = bg.ValueOrDie()->AddDocument(SynthDoc(rng, 6000));
          !r.ok()) {
        return Fail("bg add", r.status());
      }
    }
    if (Status s = bg.ValueOrDie()->WaitForMaintenance(); !s.ok()) {
      return Fail("bg maintenance", s);
    }
    std::filesystem::remove_all(bg_config.catalog_dir);
  }

  // 4. A sharded database: the scatter-gather searches register the
  //    moa_shard_* counters (shards visited/skipped and the skipped
  //    shards' posting volume).
  {
    DatabaseConfig sharded_config = config;
    sharded_config.collection.num_docs = 600;
    sharded_config.catalog_dir = dir + "_sharded";
    sharded_config.num_shards = 3;
    std::filesystem::remove_all(sharded_config.catalog_dir);
    auto sharded = MmDatabase::Open(sharded_config);
    if (!sharded.ok()) return Fail("sharded open", sharded.status());
    // First mutation seeds the sharded catalog from the collection and
    // flips to dynamic serving — only then does Search scatter-gather.
    if (auto r = sharded.ValueOrDie()->AddDocument(SynthDoc(rng, 6000));
        !r.ok()) {
      return Fail("sharded add", r.status());
    }
    for (size_t i = 0; i < 4; ++i) {
      if (auto r = sharded.ValueOrDie()->Search(QueryRequest{queries[i]});
          !r.ok()) {
        return Fail("sharded search", r.status());
      }
    }
    std::filesystem::remove_all(sharded_config.catalog_dir);
  }

  // 5. A segment open that must fail: the failure counter registers.
  {
    auto missing = SegmentReader::Open(dir + "/does_not_exist.moa");
    if (missing.ok()) {
      std::fprintf(stderr, "opening a missing segment unexpectedly worked\n");
      return 1;
    }
  }

  // 6. moa_fsync_failure_total registers lazily on the first *failed*
  //    fsync (storage/atomic_file.cc); touch it explicitly so the
  //    --names inventory is identical on healthy and unhealthy runs.
  obs::MetricsRegistry::Global().GetCounter("moa_fsync_failure_total");

  const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  switch (output) {
    case Output::kPrometheus:
      std::fputs(registry.Render(obs::MetricsFormat::kPrometheus).c_str(),
                 stdout);
      break;
    case Output::kJson:
      std::fputs(registry.Render(obs::MetricsFormat::kJson).c_str(), stdout);
      break;
    case Output::kNames:
      for (const std::string& name : registry.MetricNames()) {
        std::printf("%s\n", name.c_str());
      }
      break;
  }
  std::filesystem::remove_all(dir);
  return 0;
}
