// Optimizer walkthrough: the paper's Example 1 through all three optimizer
// layers, and the cost-based planner's Explain for retrieval queries.
#include <cstdio>

#include "algebra/evaluator.h"
#include "common/cost_ticker.h"
#include "engine/database.h"
#include "engine/query_builder.h"
#include "optimizer/explain.h"
#include "optimizer/interobject_rules.h"
#include "optimizer/intra_object.h"

using namespace moa;

int main() {
  // ---- Part 1: Example 1 of the paper -----------------------------------
  std::printf("=== Example 1: select(projecttobag([1,2,3,4,4,5]), 2, 4)\n\n");
  ExprPtr original = QueryBuilder::List({1, 2, 3, 4, 4, 5})
                         .ProjectToBag()
                         .Select(2, 4)
                         .Build();
  std::printf("original expression:\n%s\n",
              ExplainExpr(original).c_str());

  // Intra-object (E-ADT, PREDATOR-style) optimizers: no rule can fire,
  // because select and projecttobag live in different extensions.
  RewriteTrace eadt_trace;
  ExprPtr eadt = IntraObjectOnlyOptimize(original,
                                         ExtensionRegistry::Default(),
                                         &eadt_trace);
  std::printf("after intra-object (E-ADT) optimization: %s\n",
              Expr::Equal(eadt, original) ? "UNCHANGED (as the paper argues)"
                                          : "changed!?");
  std::printf("  trace: %s\n\n", ExplainTrace(eadt_trace).c_str());

  // Inter-object layer: commutes the select with the cast and then
  // exploits the (formally non-existent) ordering.
  RewriteTrace trace;
  ExprPtr optimized = RewriteToFixpoint(original, FullRuleSet(),
                                        ExtensionRegistry::Default(), &trace);
  std::printf("after inter-object optimization:\n%s",
              ExplainExpr(optimized).c_str());
  std::printf("  trace: %s\n\n", ExplainTrace(trace).c_str());

  Value v1 = Evaluate(original).ValueOrDie();
  Value v2 = Evaluate(optimized).ValueOrDie();
  std::printf("original  -> %s\n", v1.ToString().c_str());
  std::printf("optimized -> %s\n", v2.ToString().c_str());
  std::printf("answers bag-equal: %s\n\n",
              Value::BagEquals(v1, v2) ? "yes" : "NO (bug!)");

  // The asymptotics show on a realistic list size: 200k sorted elements,
  // ~0.5% selectivity.
  {
    ValueVec big;
    big.reserve(200000);
    for (int i = 0; i < 200000; ++i) big.push_back(Value::Int(i));
    ExprPtr big_original = QueryBuilder::From(
                               Expr::Const(Value::List(std::move(big))),
                               ValueKind::kList)
                               .ProjectToBag()
                               .Select(100000, 101000)
                               .Build();
    ExprPtr big_optimized = RewriteToFixpoint(
        big_original, FullRuleSet(), ExtensionRegistry::Default());
    CostScope s1;
    (void)Evaluate(big_original).ValueOrDie();
    const double c1 = s1.Snapshot().Scalar();
    CostScope s2;
    (void)Evaluate(big_optimized).ValueOrDie();
    const double c2 = s2.Snapshot().Scalar();
    std::printf("at 200k elements / 0.5%% selectivity:\n");
    std::printf("  original  cost %12.0f\n", c1);
    std::printf("  optimized cost %12.0f  (%.0fx cheaper)\n\n", c2, c1 / c2);
  }

  // ---- Part 2: the cost-based retrieval planner -------------------------
  std::printf("=== Retrieval planner Explain\n\n");
  DatabaseConfig config;
  config.collection.num_docs = 10000;
  config.collection.vocabulary = 20000;
  config.collection.seed = 1;
  auto db = MmDatabase::Open(config).ValueOrDie();

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 1;
  qconfig.terms_per_query = 4;
  qconfig.distribution = QueryTermDistribution::kMixed;
  Query q = GenerateQueries(db->collection(), qconfig).ValueOrDie()[0];

  QueryRequest request;
  request.query = q;
  request.n = 10;  // default quality target 1.0: exact strategies only
  const ExplainReport exact = db->ExplainSearch(request).ValueOrDie();
  std::printf("exact plan (quality target 1.0):\n%s\n",
              exact.ToString().c_str());

  request.options.quality_target = 0.0;  // admit the quality strategies
  const ExplainReport lax = db->ExplainSearch(request).ValueOrDie();
  std::printf("plan with unsafe strategies allowed:\n%s\n",
              lax.ToString().c_str());

  // The report is data, not text: walk the candidate table directly.
  std::printf("candidates (cheapest first):\n");
  for (const PlanCandidate& c : lax.decision.candidates) {
    std::printf("  %-22s scalar %12.1f  quality %.3f  [%s]\n",
                StrategyName(c.strategy), c.scalar, c.predicted_quality,
                PlanRejectName(c.reject));
  }
  return 0;
}
