// Multimedia retrieval scenario: integrated ranking over two content
// modalities — text terms and visual codewords ("visterms") — in ONE
// algebra, the paper's core motivation ("integrated top N queries on
// several content and alpha numerical types").
//
// The vocabulary is split: ids [0, text_vocab) are text terms, ids
// [text_vocab, total) are visual codewords quantized from image features
// (a standard substitution for real feature spaces: both yield per-object
// monotone score contributions). A query mixes both modalities and the
// Fagin TA operator ranks documents without scanning either modality
// exhaustively.
#include <cstdio>

#include "engine/database.h"

using namespace moa;

int main() {
  DatabaseConfig config;
  config.collection.num_docs = 10000;
  config.collection.vocabulary = 24000;  // 16k text terms + 8k visterms
  config.collection.mean_doc_length = 180;
  config.collection.seed = 99;
  config.scoring = ScoringModelKind::kLanguageModel;  // mi*RR*or's model
  auto db = MmDatabase::Open(config).ValueOrDie();
  const uint32_t text_vocab = 16000;

  // An "image+text" query: two text terms and two visual codewords. Term
  // ids are frequency-ranked, so large ids are discriminating content
  // terms in both modalities.
  Query query;
  query.terms = {9000, 13000,                            // text terms
                 text_vocab + 900, text_vocab + 3000};   // visterms

  std::printf("multimedia query: text{9000, 13000} + visual{%u, %u}\n\n",
              text_vocab + 900, text_vocab + 3000);

  // Rank with TA: sorted access walks each modality's impact list; random
  // access completes scores across modalities; processing stops once the
  // top 5 is certain.
  QueryRequest request;
  request.query = query;
  request.n = 5;
  request.options.strategy = StrategyFromName("fagin_ta");
  auto ta = db->Search(request).ValueOrDie().top;
  std::printf("TA: %s\n", ta.stats.ToString().c_str());

  int64_t volume = 0;
  for (TermId t : query.terms) volume += db->file().DocFrequency(t);
  std::printf("touched %lld of %lld postings (%.1f%%)\n\n",
              static_cast<long long>(ta.stats.sorted_accesses),
              static_cast<long long>(volume),
              100.0 * static_cast<double>(ta.stats.sorted_accesses) /
                  static_cast<double>(volume));

  // Show per-modality contribution of each answer.
  std::printf("%-4s %-8s %-10s %-10s %-10s\n", "#", "doc", "total",
              "text", "visual");
  for (size_t i = 0; i < ta.items.size(); ++i) {
    const DocId d = ta.items[i].doc;
    double text_part = 0.0, visual_part = 0.0;
    for (TermId t : query.terms) {
      auto tf = db->file().list(t).FindTf(d);
      if (!tf.has_value()) continue;
      const double w = db->model().Weight(t, Posting{d, *tf});
      (t < text_vocab ? text_part : visual_part) += w;
    }
    std::printf("%-4zu %-8u %-10.4f %-10.4f %-10.4f\n", i + 1, d,
                ta.items[i].score, text_part, visual_part);
  }

  // Cross-check against the exact evaluation.
  auto exact = db->GroundTruth(query, 5);
  bool same = exact.size() == ta.items.size();
  for (size_t i = 0; same && i < exact.size(); ++i) {
    same = exact[i].doc == ta.items[i].doc;
  }
  std::printf("\nexact-match with full evaluation: %s\n",
              same ? "yes" : "NO (bug!)");
  return same ? 0 : 1;
}
