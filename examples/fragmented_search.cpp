// Fragmented search: the paper's Step 1 end to end. Shows, per query, the
// work and answer quality of
//   full        — unfragmented execution (exact baseline)
//   unsafe      — small fragment only (fast, quality drops)
//   switch      — small fragment + quality check + large full scan (safe)
//   sparse      — small fragment + non-dense-index probes (fast, ~exact)
#include <cstdio>

#include "engine/database.h"
#include "ir/metrics.h"

using namespace moa;

int main() {
  DatabaseConfig config;
  config.collection.num_docs = 15000;
  config.collection.vocabulary = 25000;
  config.collection.mean_doc_length = 150;
  config.collection.seed = 5150;
  config.fragmentation.small_volume_fraction = 0.05;
  auto db = MmDatabase::Open(config).ValueOrDie();

  std::printf("%s\n\n", db->fragmentation().ToString().c_str());

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 8;
  qconfig.terms_per_query = 4;
  qconfig.distribution = QueryTermDistribution::kMixed;
  auto queries = GenerateQueries(db->collection(), qconfig).ValueOrDie();

  std::printf("%-6s %-22s %-12s %-12s\n", "query", "strategy", "work",
              "overlap@10");
  double sums[4] = {0, 0, 0, 0};
  double works[4] = {0, 0, 0, 0};
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    auto truth = db->GroundTruth(q, 10);
    auto scores = db->GroundTruthScores(q);

    // All four run as forced QueryRequests through the same entry point
    // the planner uses; the sparse probe reuses the database's shared
    // sparse-index cache.
    QueryRequest request;
    request.query = q;
    request.n = 10;
    auto forced = [&](PhysicalStrategy s) {
      request.options.strategy = s;
      return db->Search(request).ValueOrDie().top;
    };
    TopNResult full = forced(PhysicalStrategy::kFullSort);
    TopNResult unsafe_r = forced(PhysicalStrategy::kSmallFragment);
    // full scan, threshold 0: safe
    TopNResult safe_r = forced(PhysicalStrategy::kQualitySwitchFull);
    TopNResult sparse_r = forced(PhysicalStrategy::kQualitySwitchSparse);

    const TopNResult* results[4] = {&full, &unsafe_r, &safe_r, &sparse_r};
    const char* names[4] = {"full", "unsafe-small", "safe-switch",
                            "sparse-probe"};
    for (int i = 0; i < 4; ++i) {
      QualityReport rep = EvaluateQuality(results[i]->items, truth, scores);
      std::printf("%-6zu %-22s %-12.0f %-12.2f\n", qi, names[i],
                  results[i]->stats.cost.Scalar(), rep.overlap_at_n);
      sums[i] += rep.overlap_at_n;
      works[i] += results[i]->stats.cost.Scalar();
    }
  }
  std::printf("\n== means over %zu queries\n", queries.size());
  const char* names[4] = {"full", "unsafe-small", "safe-switch",
                          "sparse-probe"};
  for (int i = 0; i < 4; ++i) {
    std::printf("%-22s work %8.0f (%5.1f%% of full)  overlap %.2f\n",
                names[i], works[i] / queries.size(),
                100.0 * works[i] / works[0], sums[i] / queries.size());
  }
  std::printf(
      "\npaper's Step-1 claims: unsafe >=60%% faster with >30%% quality "
      "drop; switch restores quality at intermediate cost; non-dense index "
      "restores quality while still far below full cost.\n");
  return 0;
}
