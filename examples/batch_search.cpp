// Batch (concurrent) search: fan a query workload out across a thread
// pool with MmDatabase::SearchBatch and read the aggregate serving stats.
//
//   $ ./example_batch_search
//
// Prints QPS and latency percentiles at parallelism 1 vs the machine's
// hardware concurrency, and shows that the answers are identical.
#include <algorithm>
#include <cstdio>

#include "common/thread_pool.h"
#include "engine/database.h"
#include "ir/query_gen.h"

using namespace moa;

int main() {
  DatabaseConfig config;
  config.collection.num_docs = 10000;
  config.collection.vocabulary = 15000;
  config.collection.mean_doc_length = 120;
  config.collection.seed = 1234;
  config.fragmentation.small_volume_fraction = 0.05;
  auto db = MmDatabase::Open(config);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 64;
  qconfig.terms_per_query = 4;
  qconfig.distribution = QueryTermDistribution::kMixed;
  qconfig.seed = 99;
  auto queries = GenerateQueries(db.ValueOrDie()->collection(), qconfig);
  if (!queries.ok()) {
    std::fprintf(stderr, "queries: %s\n",
                 queries.status().ToString().c_str());
    return 1;
  }

  // One QueryRequest per query; no forced strategy, so every query is
  // routed through the planner independently.
  std::vector<QueryRequest> requests;
  for (const Query& q : queries.ValueOrDie()) {
    QueryRequest request;
    request.query = q;
    request.n = 10;
    requests.push_back(std::move(request));
  }

  // At least 2 workers for the second run so the pool path is exercised
  // even on single-core machines.
  const size_t hw = std::max<size_t>(ThreadPool::DefaultParallelism(), 2);
  for (size_t parallelism : {size_t{1}, hw}) {
    auto batch = db.ValueOrDie()->SearchBatch(requests, parallelism);
    if (!batch.ok()) {
      std::fprintf(stderr, "batch: %s\n", batch.status().ToString().c_str());
      return 1;
    }
    const BatchStats& s = batch.ValueOrDie().stats;
    std::printf(
        "parallelism %zu: %zu queries in %.1f ms  "
        "QPS %.0f  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
        s.parallelism, s.num_queries, s.wall_millis, s.qps, s.p50_millis,
        s.p95_millis, s.p99_millis);
    if (parallelism == 1) continue;

    // The fan-out is invisible in the answers: same top doc either way.
    auto seq = db.ValueOrDie()->Search(requests[0]);
    const auto& par_top = batch.ValueOrDie().results[0].top.items;
    const auto& seq_top = seq.ValueOrDie().top.items;
    if (!par_top.empty() && !seq_top.empty()) {
      std::printf("query 0 best doc: sequential=%u parallel=%u (%s)\n",
                  seq_top[0].doc, par_top[0].doc,
                  seq_top[0].doc == par_top[0].doc ? "identical"
                                                   : "MISMATCH");
    }
  }
  return 0;
}
