// The index lifecycle end to end: a database that starts as a generated
// static collection, turns dynamic on the first mutation, and then lives
// through ingest → flush → delete → merge while serving queries the
// whole time.
//
//   $ ./example_index_lifecycle [catalog-dir]
//
// Prints the catalog composition (Explain's storage line) after every
// lifecycle step, and shows that a deleted document disappears from
// results the moment its tombstone publishes — with collection
// statistics tracking the survivors exactly.
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "ir/query_gen.h"

using namespace moa;

namespace {

DocTerms SynthDoc(Rng& rng, uint32_t vocab) {
  std::map<TermId, uint32_t> terms;
  while (terms.size() < 30) {
    terms.emplace(static_cast<TermId>(rng.Uniform(vocab)),
                  1 + static_cast<uint32_t>(rng.Uniform(3)));
  }
  return DocTerms(terms.begin(), terms.end());
}

void ShowStorage(MmDatabase& db, const Query& q, const char* stage) {
  // The structured report carries the storage description (and the
  // planner's choice over it) as fields — no text scraping needed.
  QueryRequest request;
  request.query = q;
  auto report = db.ExplainSearch(request);
  if (report.ok()) {
    std::printf("[%s]\n  storage: %s\n  planned: %s\n", stage,
                report.ValueOrDie().storage.c_str(),
                StrategyName(report.ValueOrDie().decision.strategy));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "example_catalog")
                     .string();
  std::filesystem::remove_all(dir);

  DatabaseConfig config;
  config.collection.num_docs = 5000;
  config.collection.vocabulary = 8000;
  config.collection.mean_doc_length = 100;
  config.collection.seed = 4711;
  config.catalog_dir = dir;
  auto opened = MmDatabase::Open(config);
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  MmDatabase& db = *opened.ValueOrDie();

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 1;
  qconfig.terms_per_query = 4;
  qconfig.seed = 7;
  const Query query =
      GenerateQueries(db.collection(), qconfig).ValueOrDie()[0];

  // 1. Ingest: the first mutation seeds the catalog with the generated
  //    collection, then buffers new documents in the memtable.
  Rng rng(2026);
  std::vector<DocTerms> fresh;
  for (int i = 0; i < 1000; ++i) fresh.push_back(SynthDoc(rng, 8000));
  const DocId first = db.AddDocuments(fresh).ValueOrDie();
  std::printf("ingested %zu docs (first new id %u); live docs: %llu\n",
              fresh.size(), first,
              static_cast<unsigned long long>(
                  db.catalog()->Snapshot()->stats().num_live_docs));
  ShowStorage(db, query, "after ingest");

  // 2. Flush: memtable becomes an immutable segment, atomically published
  //    through the manifest.
  if (Status s = db.Flush(); !s.ok()) {
    std::fprintf(stderr, "flush: %s\n", s.ToString().c_str());
    return 1;
  }
  ShowStorage(db, query, "after flush");

  // 3. Delete: the top document of our query vanishes immediately.
  auto before = db.Search(QueryRequest{query});
  if (before.ok() && !before.ValueOrDie().top.items.empty()) {
    const DocId victim = before.ValueOrDie().top.items[0].doc;
    if (Status s = db.DeleteDocument(victim); !s.ok()) {
      std::fprintf(stderr, "delete: %s\n", s.ToString().c_str());
      return 1;
    }
    auto after = db.Search(QueryRequest{query});
    std::printf("deleted doc %u; it %s the top-10 now\n", victim,
                after.ok() && !after.ValueOrDie().top.items.empty() &&
                        after.ValueOrDie().top.items[0].doc == victim
                    ? "STILL LEADS (bug!)"
                    : "is gone from");
  }
  ShowStorage(db, query, "after delete");

  // 4. More ingest + flush -> multiple segments; then merge compacts
  //    everything, dropping tombstones and reclaiming ids.
  std::vector<DocTerms> more;
  for (int i = 0; i < 500; ++i) more.push_back(SynthDoc(rng, 8000));
  db.AddDocuments(more).ValueOrDie();
  if (Status s = db.Flush(); !s.ok()) return 1;
  ShowStorage(db, query, "two segments");
  auto merged = db.Merge();
  if (!merged.ok()) {
    std::fprintf(stderr, "merge: %s\n", merged.status().ToString().c_str());
    return 1;
  }
  std::printf("merged %zu segments into one\n", merged.ValueOrDie());
  ShowStorage(db, query, "after merge");

  auto final_result = db.Search(QueryRequest{query});
  if (final_result.ok()) {
    std::printf("final top-3 (strategy %s):\n",
                StrategyName(final_result.ValueOrDie().strategy));
    const auto& items = final_result.ValueOrDie().top.items;
    for (size_t i = 0; i < items.size() && i < 3; ++i) {
      std::printf("  doc %-8u score %.5f\n", items[i].doc, items[i].score);
    }
  }
  return 0;
}
