// E16 — sharded scatter-gather top-N vs the single-catalog baseline.
//
// The same corpus is loaded into a ShardedCatalog at 1, 2 and 4 shards
// (interleaved global ids, one merged segment per shard) and served
// through ShardCoordinator::Execute with forced max-score. Per shard
// count and query class the bench reports
//
//   qps                    end-to-end queries/second (wall);
//   work_per_query         the exact cost-scalar work per query
//                          (CostCounters::Scalar() over the workload);
//   naive_work_per_query   ditto with bound_pruning off — the naive
//                          scatter-gather baseline;
//   span_per_query         critical-path work: max per-shard unseeded
//                          cost, what a full-width parallel wave's wall
//                          time tracks on multi-core hardware;
//   skip_rate              shards skipped / shards considered — the
//                          bound-aware pruning rate;
//   postings_skipped_pq    local postings the skipped shards would have
//                          streamed, per query.
//
// Two query classes: `mixed` (4 squared-uniform terms, head-heavy — the
// throughput class whose span(1)/span(4) ratio is the >=1.5x
// acceptance speedup at 4 shards) and `selective` (one mid-tail term —
// small volume, where whole shards drop below the global n-th bound and
// the skip rate must be nonzero).
//
// Hardware caveat: on a single-CPU container the shard waves serialize,
// so wall qps *declines* slightly with shard count (per-shard heap-fill
// overhead) while the span ratio measures the intra-query parallel
// speedup the sharding buys once cores exist. The distilled
// BENCH_shard.json records wall, total-work and span ratios side by
// side for that reason.
//
// MOA_BENCH_TINY=1 shrinks the corpus so the CI smoke job finishes in
// seconds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cost_ticker.h"
#include "common/rng.h"
#include "engine/shard_coordinator.h"
#include "exec/registry.h"
#include "storage/catalog/sharded_catalog.h"

namespace moa {
namespace {

bool Tiny() { return std::getenv("MOA_BENCH_TINY") != nullptr; }

size_t CorpusDocs() { return Tiny() ? 2000 : 20000; }
size_t Vocab() { return Tiny() ? 3000 : 20000; }

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("moa_bench_e16_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Deterministic synthetic document, Zipf-ish term choice (same corpus
/// shape as bench_e15 so the two lifecycle benches stay comparable).
DocTerms SynthDoc(Rng& rng) {
  std::map<TermId, uint32_t> terms;
  const size_t want = 20 + rng.Uniform(40);
  while (terms.size() < want) {
    const double u = rng.NextDouble();
    const TermId t = static_cast<TermId>(u * u * Vocab());
    terms.emplace(t, 1 + static_cast<uint32_t>(rng.Uniform(3)));
  }
  return DocTerms(terms.begin(), terms.end());
}

const std::vector<DocTerms>& Corpus() {
  static const std::vector<DocTerms>* corpus = [] {
    Rng rng(0xE16);
    auto* docs = new std::vector<DocTerms>();
    docs->reserve(CorpusDocs());
    for (size_t i = 0; i < CorpusDocs(); ++i) docs->push_back(SynthDoc(rng));
    return docs;
  }();
  return *corpus;
}

void MustOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench_e16: %s: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

/// The corpus sharded `num_shards` ways, flushed and merged to one
/// segment per shard — the steady serving state.
std::unique_ptr<ShardedCatalog> BuildSharded(size_t num_shards,
                                             const std::string& dir) {
  ShardedCatalog::Options options;
  options.num_shards = num_shards;
  options.shard.num_terms = Vocab();
  options.shard.dir = dir;
  auto catalog = ShardedCatalog::Create(options).ValueOrDie();
  MustOk(catalog->AddDocuments(Corpus()).status(), "add");
  MustOk(catalog->FlushAll(), "flush");
  MustOk(catalog->MergeAll().status(), "merge");
  return catalog;
}

/// Head-heavy 4-term queries: the throughput class.
std::vector<Query> MixedWorkload(size_t num_queries) {
  Rng rng(0xBEEF16);
  std::vector<Query> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    Query q;
    while (q.terms.size() < 4) {
      const double u = rng.NextDouble();
      const TermId t = static_cast<TermId>(u * u * Vocab());
      if (std::find(q.terms.begin(), q.terms.end(), t) == q.terms.end()) {
        q.terms.push_back(t);
      }
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Single mid-tail term per query: the selective lookup class. The shard
/// bound is one max impact, so a shard whose best posting cannot beat
/// the global n-th gets skipped outright — the class where bound-aware
/// gather shows its skip rate.
std::vector<Query> SelectiveWorkload(size_t num_queries) {
  Rng rng(0x5E1E16);
  std::vector<Query> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    Query q;
    q.terms.push_back(
        static_cast<TermId>(Vocab() / 8 + rng.Uniform(7 * Vocab() / 8)));
    queries.push_back(std::move(q));
  }
  return queries;
}

struct RunStats {
  double checksum = 0.0;
  CostCounters cost;
};

RunStats RunQueries(const ShardedCatalog& catalog,
                    const std::vector<Query>& queries, bool bound_pruning) {
  auto snapshot = catalog.Snapshot();
  ShardCoordinator::Options options;  // parallelism auto
  options.bound_pruning = bound_pruning;
  RunStats stats;
  for (const Query& q : queries) {
    auto top = ShardCoordinator::Execute(snapshot, PhysicalStrategy::kMaxScore,
                                         q, 10, ExecOptions{}, options);
    if (!top.ok()) std::abort();
    const TopNResult& result = top.ValueOrDie();
    for (const ScoredDoc& d : result.items) stats.checksum += d.score;
    stats.cost += result.stats.cost;
  }
  return stats;
}

/// Critical-path work per query: every shard executed independently
/// (unseeded — exactly what a full-width parallel wave runs), taking the
/// max per-shard cost scalar. On multi-core hardware the wave's wall
/// time tracks this span, so span(1 shard) / span(N shards) is the
/// intra-query parallel speedup the sharding buys once cores exist —
/// measurable honestly even on a single-CPU box.
double SpanPerQuery(const ShardedCatalog& catalog,
                    const std::vector<Query>& queries) {
  auto snapshot = catalog.Snapshot();
  double total = 0.0;
  for (const Query& q : queries) {
    double span = 0.0;
    for (size_t s = 0; s < snapshot->num_shards(); ++s) {
      ExecContext context;
      context.model = &snapshot->shard_model(s);
      context.postings = &snapshot->shard_source(s);
      context.sparse_cache = &snapshot->shard_sparse_cache(s);
      auto top = StrategyRegistry::Global().Execute(
          PhysicalStrategy::kMaxScore, context, q, 10, ExecOptions{});
      if (!top.ok()) std::abort();
      span = std::max(span, top.ValueOrDie().stats.cost.Scalar());
    }
    total += span;
  }
  return total / static_cast<double>(queries.size());
}

void RunShardedBench(benchmark::State& state, const std::vector<Query>& queries,
                     const char* tag) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  const std::string dir =
      FreshDir(std::string(tag) + "_" + std::to_string(num_shards));
  auto catalog = BuildSharded(num_shards, dir);

  // Warm pass: the snapshot's per-shard impact-bound caches build on
  // first use and must not be charged to the measured runs.
  benchmark::DoNotOptimize(RunQueries(*catalog, queries, true));

  RunStats last;
  for (auto _ : state) {
    last = RunQueries(*catalog, queries, true);
    benchmark::DoNotOptimize(last.checksum);
  }
  // Outside the timed loop: the naive scatter-gather baseline (no skip,
  // no threshold seeding) and the unseeded critical path.
  const RunStats naive = RunQueries(*catalog, queries, false);
  const double span = SpanPerQuery(*catalog, queries);
  const double per_query = static_cast<double>(queries.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * per_query,
      benchmark::Counter::kIsRate);
  state.counters["work_per_query"] = last.cost.Scalar() / per_query;
  const double considered = static_cast<double>(last.cost.shards_visited +
                                                last.cost.shards_skipped);
  state.counters["skip_rate"] =
      considered > 0
          ? static_cast<double>(last.cost.shards_skipped) / considered
          : 0.0;
  state.counters["postings_skipped_pq"] =
      static_cast<double>(last.cost.shard_postings_skipped) / per_query;
  state.counters["naive_work_per_query"] = naive.cost.Scalar() / per_query;
  state.counters["span_per_query"] = span;
  std::filesystem::remove_all(dir);
}

void BM_ShardedMixed(benchmark::State& state) {
  static const std::vector<Query>* queries =
      new std::vector<Query>(MixedWorkload(Tiny() ? 24 : 64));
  RunShardedBench(state, *queries, "mixed");
}

void BM_ShardedSelective(benchmark::State& state) {
  static const std::vector<Query>* queries =
      new std::vector<Query>(SelectiveWorkload(Tiny() ? 24 : 64));
  RunShardedBench(state, *queries, "selective");
}

BENCHMARK(BM_ShardedMixed)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedSelective)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
