// E13 — batch throughput scaling: the serving-layer question the paper's
// per-query work reduction feeds into. One shared read-only database, many
// concurrent queries; per (strategy, parallelism): QPS, p50/p95/p99 query
// latency, and the speedup headroom left by the shared sparse cache.
//
// Expected shape on a P-core machine: QPS grows near-linearly to P for
// every strategy (all shared state is read-only or build-once), with the
// absolute QPS ordering following each strategy's per-query work. On a
// 1-core container the sweep degenerates to overhead measurement — the
// scaling claim needs real cores.
//
// MOA_BENCH_TINY=1 shrinks the collection and workload so the CI smoke job
// finishes in seconds.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_util.h"
#include "common/thread_pool.h"

namespace moa {
namespace {

bool Tiny() { return std::getenv("MOA_BENCH_TINY") != nullptr; }

/// Separate from benchutil::Db(): the throughput sweep wants a
/// CI-shrinkable collection and a workload large enough to keep 8 workers
/// busy (the shared 30-query workload is too short a batch).
MmDatabase& ThroughputDb() {
  static MmDatabase* db = [] {
    DatabaseConfig config;
    config.collection.num_docs = Tiny() ? 4000 : 20000;
    config.collection.vocabulary = Tiny() ? 6000 : 30000;
    config.collection.mean_doc_length = Tiny() ? 80 : 150;
    config.collection.zipf_skew = 1.0;
    config.collection.seed = 900913;
    config.fragmentation.small_volume_fraction = 0.05;
    config.scoring = ScoringModelKind::kBm25;
    return MmDatabase::Open(config).ValueOrDie().release();
  }();
  return *db;
}

const std::vector<Query>& ThroughputWorkload() {
  static const std::vector<Query>* queries = [] {
    QueryWorkloadConfig config;
    config.num_queries = Tiny() ? 32 : 128;
    config.terms_per_query = 4;
    config.distribution = QueryTermDistribution::kMixed;
    config.seed = 1313;
    return new std::vector<Query>(
        GenerateQueries(ThroughputDb().collection(), config).ValueOrDie());
  }();
  return *queries;
}

/// Tail-term (selective) query class: uniform over occurring terms of a
/// Zipf collection draws mostly rare terms, so per-query volume is small
/// and sorted/random-access strategies get their best case. This is the
/// class where the cost-based planner should beat a forced max-score
/// default, not just match it.
const std::vector<Query>& SelectiveWorkload() {
  static const std::vector<Query>* queries = [] {
    QueryWorkloadConfig config;
    config.num_queries = Tiny() ? 32 : 128;
    config.terms_per_query = 4;
    config.distribution = QueryTermDistribution::kUniform;
    config.seed = 424242;
    return new std::vector<Query>(
        GenerateQueries(ThroughputDb().collection(), config).ValueOrDie());
  }();
  return *queries;
}

void ReportBatch(benchmark::State& state, const BatchStats& last) {
  state.counters["threads"] = static_cast<double>(last.parallelism);
  state.counters["qps"] = last.qps;
  state.counters["p50_ms"] = last.p50_millis;
  state.counters["p95_ms"] = last.p95_millis;
  state.counters["p99_ms"] = last.p99_millis;
}

void RunBatchOver(benchmark::State& state, const std::vector<Query>& queries,
                  const char* strategy_name) {
  const size_t parallelism = static_cast<size_t>(state.range(0));
  MmDatabase& db = ThroughputDb();

  SearchOptions opts;
  opts.n = 10;
  opts.safe_only = false;
  opts.force = benchutil::StrategyOrDie(strategy_name);

  BatchStats last;
  for (auto _ : state) {
    auto r = db.SearchBatch(queries, opts, parallelism);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = r.ValueOrDie().stats;
    benchmark::DoNotOptimize(r.ValueOrDie().results.data());
  }
  ReportBatch(state, last);
}

void RunBatch(benchmark::State& state, const char* strategy_name) {
  RunBatchOver(state, ThroughputWorkload(), strategy_name);
}

/// Planner-on: no forced strategy — the cost-based planner chooses per
/// query under `quality_target`.
void RunBatchPlanned(benchmark::State& state,
                     const std::vector<Query>& queries,
                     double quality_target) {
  const size_t parallelism = static_cast<size_t>(state.range(0));
  MmDatabase& db = ThroughputDb();

  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (const Query& q : queries) {
    QueryRequest request;
    request.query = q;
    request.n = 10;
    request.options.quality_target = quality_target;
    requests.push_back(request);
  }

  BatchStats last;
  for (auto _ : state) {
    auto r = db.SearchBatch(requests, parallelism);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = r.ValueOrDie().stats;
    benchmark::DoNotOptimize(r.ValueOrDie().results.data());
  }
  ReportBatch(state, last);
}

void BM_BatchHeap(benchmark::State& state) { RunBatch(state, "heap"); }
void BM_BatchFaginTA(benchmark::State& state) { RunBatch(state, "fagin_ta"); }
void BM_BatchFaginNRA(benchmark::State& state) {
  RunBatch(state, "fagin_nra");
}
void BM_BatchMaxScore(benchmark::State& state) {
  RunBatch(state, "maxscore");
}
void BM_BatchQualitySwitchFull(benchmark::State& state) {
  RunBatch(state, "quality_switch_full");
}
void BM_BatchQualitySwitchSparse(benchmark::State& state) {
  RunBatch(state, "quality_switch_sparse");
}
void BM_BatchPlanned(benchmark::State& state) {
  RunBatchPlanned(state, ThroughputWorkload(), 1.0);
}
void BM_BatchPlannedQuality90(benchmark::State& state) {
  RunBatchPlanned(state, ThroughputWorkload(), 0.9);
}
void BM_BatchSelectiveMaxScore(benchmark::State& state) {
  RunBatchOver(state, SelectiveWorkload(), "maxscore");
}
void BM_BatchSelectivePlanned(benchmark::State& state) {
  RunBatchPlanned(state, SelectiveWorkload(), 1.0);
}

void ParallelismSweep(benchmark::internal::Benchmark* b) {
  // 1 -> hardware_concurrency in powers of two, always including 8 so the
  // acceptance sweep (QPS at 8 vs 1) is present even when the bench runs
  // on a bigger machine.
  const size_t hw = ThreadPool::DefaultParallelism();
  for (size_t p = 1; p <= hw; p *= 2) b->Arg(static_cast<int>(p));
  if ((hw & (hw - 1)) != 0) b->Arg(static_cast<int>(hw));
  if (hw < 8) b->Arg(8);
  b->Unit(benchmark::kMillisecond)->UseRealTime();
}

BENCHMARK(BM_BatchHeap)->Apply(ParallelismSweep);
BENCHMARK(BM_BatchFaginTA)->Apply(ParallelismSweep);
BENCHMARK(BM_BatchFaginNRA)->Apply(ParallelismSweep);
BENCHMARK(BM_BatchMaxScore)->Apply(ParallelismSweep);
BENCHMARK(BM_BatchQualitySwitchFull)->Apply(ParallelismSweep);
BENCHMARK(BM_BatchQualitySwitchSparse)->Apply(ParallelismSweep);
BENCHMARK(BM_BatchPlanned)->Apply(ParallelismSweep);
BENCHMARK(BM_BatchPlannedQuality90)->Apply(ParallelismSweep);
BENCHMARK(BM_BatchSelectiveMaxScore)->Apply(ParallelismSweep);
BENCHMARK(BM_BatchSelectivePlanned)->Apply(ParallelismSweep);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
