// E15 — the index lifecycle (ingest → flush → merge → delete) under the
// serving-shaped questions:
//
//  1. Ingest throughput: documents/second into the catalog, by batch size
//     (mutations are copy-on-write per call, so batching is the lever).
//  2. Flush latency: memtable → immutable MOAIF02 segment + sidecar +
//     manifest publish, as a function of buffered documents.
//  3. Query latency vs segment count: the same corpus served from 1, 2, 4
//     and 8 segments through the merged cursor (per-segment cursor setup
//     and chaining is the fragmentation tax).
//  4. Merge win: query latency over the fragmented catalog vs after
//     Merge() compacts it back to one segment (counter `frag_over_merged`
//     on the merged run).
//  5. Ingest with automatic maintenance: the same durable ingest (WAL on,
//     periodic flush every `trigger` documents) with the flushes either
//     blocking the ingest thread (arg 0, foreground) or running as
//     background jobs on the shared pool (arg 1, BackgroundMaintenance).
//     The background/foreground items-per-second ratio is the headline
//     number BENCH_lifecycle.json tracks; on a single-core runner the
//     flush cannot overlap ingest and the ratio honestly collapses
//     toward 1.0 (see the hardware note in the snapshot).
//
// MOA_BENCH_TINY=1 shrinks the corpus so the CI smoke job finishes in
// seconds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "exec/registry.h"
#include "ir/query_gen.h"
#include "storage/catalog/background_jobs.h"
#include "storage/catalog/index_catalog.h"

namespace moa {
namespace {

bool Tiny() { return std::getenv("MOA_BENCH_TINY") != nullptr; }

size_t CorpusDocs() { return Tiny() ? 2000 : 20000; }
size_t Vocab() { return Tiny() ? 3000 : 20000; }

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("moa_bench_e15_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Deterministic synthetic document, Zipf-ish term choice.
DocTerms SynthDoc(Rng& rng) {
  std::map<TermId, uint32_t> terms;
  const size_t want = 20 + rng.Uniform(40);
  while (terms.size() < want) {
    // Squared uniform skews toward low ids — frequent head terms.
    const double u = rng.NextDouble();
    const TermId t = static_cast<TermId>(u * u * Vocab());
    terms.emplace(t, 1 + static_cast<uint32_t>(rng.Uniform(3)));
  }
  return DocTerms(terms.begin(), terms.end());
}

const std::vector<DocTerms>& Corpus() {
  static const std::vector<DocTerms>* corpus = [] {
    Rng rng(0xE15);
    auto* docs = new std::vector<DocTerms>();
    docs->reserve(CorpusDocs());
    for (size_t i = 0; i < CorpusDocs(); ++i) docs->push_back(SynthDoc(rng));
    return docs;
  }();
  return *corpus;
}

IndexCatalog::Options CatalogOptions(const std::string& dir) {
  IndexCatalog::Options options;
  options.num_terms = Vocab();
  options.dir = dir;
  return options;
}

void MustOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench_e15: %s: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

/// Query workload over the synthetic corpus's term space.
std::vector<Query> Workload(size_t num_queries) {
  Rng rng(0xBEEF15);
  std::vector<Query> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    Query q;
    while (q.terms.size() < 4) {
      const double u = rng.NextDouble();
      const TermId t = static_cast<TermId>(u * u * Vocab());
      if (std::find(q.terms.begin(), q.terms.end(), t) == q.terms.end()) {
        q.terms.push_back(t);
      }
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

// ------------------------------------------------------------- ingest

void BM_IngestThroughput(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const std::vector<DocTerms>& corpus = Corpus();
  int64_t ingested = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto catalog = IndexCatalog::Create(CatalogOptions("")).ValueOrDie();
    state.ResumeTiming();
    size_t i = 0;
    while (i < corpus.size()) {
      const size_t n = std::min(batch, corpus.size() - i);
      std::vector<DocTerms> slice(corpus.begin() + i, corpus.begin() + i + n);
      auto first = catalog->AddDocuments(slice);
      if (!first.ok()) state.SkipWithError("ingest failed");
      i += n;
    }
    ingested = static_cast<int64_t>(corpus.size());
  }
  state.SetItemsProcessed(state.iterations() * ingested);
}

// -------------------------------------------------------------- flush

void BM_FlushLatency(benchmark::State& state) {
  const size_t docs = static_cast<size_t>(state.range(0));
  const std::vector<DocTerms>& corpus = Corpus();
  const std::string dir = FreshDir("flush");
  size_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir + std::to_string(round));
    auto catalog =
        IndexCatalog::Create(CatalogOptions(dir + std::to_string(round)))
            .ValueOrDie();
    std::vector<DocTerms> slice(corpus.begin(),
                                corpus.begin() + std::min(docs, corpus.size()));
    if (!catalog->AddDocuments(slice).ok()) state.SkipWithError("add");
    state.ResumeTiming();
    MustOk(catalog->Flush(), "flush");
    state.PauseTiming();
    std::filesystem::remove_all(dir + std::to_string(round));
    ++round;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(docs));
}

// --------------------------------- ingest with automatic maintenance

/// Durable ingest of the whole corpus with a flush every `trigger`
/// buffered documents — either synchronously on the ingest thread
/// (foreground, arg 0) or scheduled by BackgroundMaintenance on the
/// shared thread pool while ingest keeps going (background, arg 1).
/// Both modes do identical logical work (same WAL traffic, same number
/// of segment builds), so items_per_second isolates what moving the
/// flush off the ingest thread buys.
void BM_IngestWithMaintenance(benchmark::State& state) {
  const bool background = state.range(0) != 0;
  const size_t trigger = Tiny() ? 256 : 1024;
  const size_t batch = 64;  // WAL group-commit unit
  const std::vector<DocTerms>& corpus = Corpus();
  const std::string dir = FreshDir(background ? "auto_bg" : "auto_fg");
  size_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string d = dir + std::to_string(round++);
    std::filesystem::remove_all(d);
    auto catalog = IndexCatalog::Create(CatalogOptions(d)).ValueOrDie();
    state.ResumeTiming();
    if (background) {
      MaintenancePolicy policy;
      policy.flush_trigger_docs = trigger;
      policy.merge_trigger_segments = 0;
      BackgroundMaintenance maintenance(catalog.get(), policy);
      size_t i = 0;
      while (i < corpus.size()) {
        const size_t n = std::min(batch, corpus.size() - i);
        std::vector<DocTerms> slice(corpus.begin() + i,
                                    corpus.begin() + i + n);
        if (!catalog->AddDocuments(slice).ok()) {
          state.SkipWithError("ingest failed");
        }
        i += n;
      }
      maintenance.WaitIdle();
    } else {
      size_t i = 0;
      size_t buffered = 0;
      while (i < corpus.size()) {
        const size_t n = std::min(batch, corpus.size() - i);
        std::vector<DocTerms> slice(corpus.begin() + i,
                                    corpus.begin() + i + n);
        if (!catalog->AddDocuments(slice).ok()) {
          state.SkipWithError("ingest failed");
        }
        i += n;
        buffered += n;
        if (buffered >= trigger) {
          MustOk(catalog->Flush(), "flush");
          buffered = 0;
        }
      }
    }
    MustOk(catalog->Flush(), "final flush");
    state.PauseTiming();
    std::filesystem::remove_all(d);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}

// ------------------------------------- query latency vs segment count

/// The whole corpus flushed as `num_segments` equal segments.
std::unique_ptr<IndexCatalog> FragmentedCatalog(size_t num_segments,
                                                const std::string& dir) {
  auto catalog = IndexCatalog::Create(CatalogOptions(dir)).ValueOrDie();
  const std::vector<DocTerms>& corpus = Corpus();
  const size_t per_segment = (corpus.size() + num_segments - 1) / num_segments;
  size_t i = 0;
  while (i < corpus.size()) {
    const size_t n = std::min(per_segment, corpus.size() - i);
    std::vector<DocTerms> slice(corpus.begin() + i, corpus.begin() + i + n);
    MustOk(catalog->AddDocuments(slice).status(), "add");
    MustOk(catalog->Flush(), "flush");
    i += n;
  }
  return catalog;
}

double RunQueries(const IndexCatalog& catalog,
                  const std::vector<Query>& queries) {
  auto view = catalog.OpenReadView();
  ExecContext context;
  context.model = view->model();
  context.postings = view.get();
  double checksum = 0;
  for (const Query& q : queries) {
    auto top = StrategyRegistry::Global().Execute(
        PhysicalStrategy::kMaxScore, context, q, 10, ExecOptions{});
    if (!top.ok()) std::abort();
    for (const ScoredDoc& d : top.ValueOrDie().items) checksum += d.score;
  }
  return checksum;
}

void BM_QueryBySegmentCount(benchmark::State& state) {
  const size_t num_segments = static_cast<size_t>(state.range(0));
  const std::string dir =
      FreshDir("segcount_" + std::to_string(num_segments));
  auto catalog = FragmentedCatalog(num_segments, dir);
  const std::vector<Query> queries = Workload(Tiny() ? 16 : 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQueries(*catalog, queries));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------- merge win

void BM_QueryAfterMerge(benchmark::State& state) {
  // 8 segments, then one Merge(): the counter reports the fragmented /
  // merged latency ratio over the same workload.
  const std::string dir = FreshDir("mergewin");
  auto catalog = FragmentedCatalog(8, dir);
  const std::vector<Query> queries = Workload(Tiny() ? 16 : 64);

  // Warm pass first: the snapshot's impact-bound cache builds on first
  // use and must not be charged to the fragmented side.
  benchmark::DoNotOptimize(RunQueries(*catalog, queries));
  WallTimer fragmented_timer;
  benchmark::DoNotOptimize(RunQueries(*catalog, queries));
  const double fragmented_millis = fragmented_timer.ElapsedMillis();

  MustOk(catalog->Merge().status(), "merge");

  double merged_millis = 0;
  for (auto _ : state) {
    WallTimer timer;
    benchmark::DoNotOptimize(RunQueries(*catalog, queries));
    merged_millis = timer.ElapsedMillis();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  if (merged_millis > 0) {
    state.counters["frag_over_merged"] = fragmented_millis / merged_millis;
  }
  std::filesystem::remove_all(dir);
}

BENCHMARK(BM_IngestThroughput)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlushLatency)
    ->Arg(512)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestWithMaintenance)
    ->Arg(0)   // foreground: flush blocks the ingest thread
    ->Arg(1)   // background: BackgroundMaintenance on the shared pool
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_QueryBySegmentCount)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryAfterMerge)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
