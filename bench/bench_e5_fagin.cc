// E5 — the Fagin-family bound administration the paper builds on (FM,
// Fag98, Fag99): "one can take advantage of lists being ordered ... ending
// the processing as soon as it is certain that the required top N answers
// have been computed."
//
// Per (algorithm, N): the depth of sorted access, random accesses, and the
// fraction of the query's postings volume actually touched. Expected
// shape: accesses << volume, growing with N; NRA does zero random access;
// the exhaustive baseline reads 100%.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace moa {
namespace {

int64_t WorkloadVolume() {
  int64_t v = 0;
  for (const Query& q : benchutil::ZipfWorkload()) {
    for (TermId t : q.terms) v += benchutil::Db().file().DocFrequency(t);
  }
  return v;
}

void RunFagin(benchmark::State& state, PhysicalStrategy strategy) {
  const size_t n = static_cast<size_t>(state.range(0));
  MmDatabase& db = benchutil::Db();
  int64_t sorted = 0, random = 0;
  for (auto _ : state) {
    sorted = random = 0;
    for (const Query& q : benchutil::ZipfWorkload()) {
      auto r = db.Execute(strategy, q, n);
      sorted += r.ValueOrDie().stats.sorted_accesses;
      random += r.ValueOrDie().stats.random_accesses;
      benchmark::DoNotOptimize(r.ValueOrDie().items.data());
    }
  }
  state.counters["sorted_accesses"] = static_cast<double>(sorted);
  state.counters["random_accesses"] = static_cast<double>(random);
  state.counters["volume_touched_pct"] =
      100.0 * static_cast<double>(sorted) /
      static_cast<double>(WorkloadVolume());
}

void BM_FaginFA(benchmark::State& state) {
  RunFagin(state, benchutil::StrategyOrDie("fagin_fa"));
}
void BM_FaginTA(benchmark::State& state) {
  RunFagin(state, benchutil::StrategyOrDie("fagin_ta"));
}
void BM_FaginNRA(benchmark::State& state) {
  RunFagin(state, benchutil::StrategyOrDie("fagin_nra"));
}

BENCHMARK(BM_FaginFA)->Arg(1)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaginTA)->Arg(1)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaginNRA)->Arg(1)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

/// Exhaustive baseline: touches 100% of the volume by construction.
void BM_ExhaustiveBaseline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MmDatabase& db = benchutil::Db();
  int64_t seq = 0;
  for (auto _ : state) {
    seq = 0;
    for (const Query& q : benchutil::ZipfWorkload()) {
      TopNResult r =
          db.Execute(PhysicalStrategy::kHeap, q, n).ValueOrDie();
      seq += r.stats.cost.sequential_reads;
    }
  }
  state.counters["sorted_accesses"] = static_cast<double>(seq);
  state.counters["volume_touched_pct"] = 100.0;
}
BENCHMARK(BM_ExhaustiveBaseline)
    ->Arg(1)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
