// E14 — posting storage formats: the raw MOAIF01 dump vs the compressed
// block-based segment in both payload codecs (bit-packed MOAIF03, the
// writer default, and varbyte MOAIF02). Three questions, per the storage
// redesign:
//
//  1. Space: on-disk bytes for the same collection (counter `v1_bytes`,
//     `v2_bytes`, `v1_over_v2`). The acceptance bar is >= 2x.
//  2. Cold start: ReadInvertedFile rebuilds the whole in-memory structure
//     per open; SegmentReader::Open maps the file and validates
//     directories only — postings decode lazily per block.
//  3. Hot path: full-list scan and skip-heavy advance_to throughput via
//     the cursor API over both representations (plus the raw
//     vector-direct scan as the no-abstraction reference).
//
// MOA_BENCH_TINY=1 shrinks the collection so the CI smoke job finishes
// in seconds.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/database.h"
#include "ir/query_gen.h"
#include "storage/io.h"
#include "storage/segment/fragment_directory.h"
#include "storage/segment/segment_reader.h"
#include "storage/segment/segment_writer.h"

namespace moa {
namespace {

bool Tiny() { return std::getenv("MOA_BENCH_TINY") != nullptr; }

/// Separate from benchutil::Db(): the storage sweep wants a CI-shrinkable
/// collection (same shape as the e13 throughput bench).
MmDatabase& StorageDb() {
  static MmDatabase* db = [] {
    DatabaseConfig config;
    config.collection.num_docs = Tiny() ? 4000 : 20000;
    config.collection.vocabulary = Tiny() ? 6000 : 30000;
    config.collection.mean_doc_length = Tiny() ? 80 : 150;
    config.collection.zipf_skew = 1.0;
    config.collection.seed = 900913;
    config.fragmentation.small_volume_fraction = 0.05;
    config.scoring = ScoringModelKind::kBm25;
    return MmDatabase::Open(config).ValueOrDie().release();
  }();
  return *db;
}

std::string PathFor(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("moa_bench_e14_") + name))
      .string();
}

/// Writes all stored formats once and returns their paths + sizes: the
/// raw MOAIF01 dump, the bit-packed MOAIF03 segment (the writer default)
/// and a varbyte MOAIF02 segment of the same collection for the codec
/// head-to-head.
struct StoredFormats {
  std::string v1_path = PathFor("index.moaif");
  std::string v2_path = PathFor("index.moaseg");
  std::string vb_path = PathFor("index_vb.moaseg");
  uint64_t v1_bytes = 0;
  uint64_t v2_bytes = 0;
  uint64_t vb_bytes = 0;

  StoredFormats() {
    MmDatabase& db = StorageDb();
    Status v1 = WriteInvertedFile(db.file(), v1_path);
    Status v2 = db.SaveSegment(v2_path);
    SegmentWriterOptions vb_options;
    vb_options.codec = SegmentCodec::kVarbyte;
    vb_options.impact_model = db.model().name();
    vb_options.impact_fn = [&db](TermId t, const Posting& p) {
      return db.model().Weight(t, p);
    };
    Status vb = WriteSegment(db.file(), vb_path, vb_options);
    if (!v1.ok() || !v2.ok() || !vb.ok()) {
      std::fprintf(stderr, "bench_e14: write failed: %s / %s / %s\n",
                   v1.ToString().c_str(), v2.ToString().c_str(),
                   vb.ToString().c_str());
      std::abort();
    }
    v1_bytes = std::filesystem::file_size(v1_path);
    v2_bytes = std::filesystem::file_size(v2_path);
    vb_bytes = std::filesystem::file_size(vb_path);
  }
};

StoredFormats& Formats() {
  static StoredFormats* formats = new StoredFormats();
  return *formats;
}

/// The query-term working set: every term of a mixed workload (frequent
/// and rare terms, like real retrieval traffic touches).
const std::vector<TermId>& WorkloadTerms() {
  static const std::vector<TermId>* terms = [] {
    QueryWorkloadConfig config;
    config.num_queries = Tiny() ? 16 : 64;
    config.terms_per_query = 4;
    config.distribution = QueryTermDistribution::kMixed;
    config.seed = 1414;
    auto queries =
        GenerateQueries(StorageDb().collection(), config).ValueOrDie();
    auto* t = new std::vector<TermId>();
    for (const Query& q : queries) {
      t->insert(t->end(), q.terms.begin(), q.terms.end());
    }
    return t;
  }();
  return *terms;
}

// ---------------------------------------------------------------- space

void BM_OnDiskSize(benchmark::State& state) {
  // Not a timing benchmark: runs once to surface the size counters.
  for (auto _ : state) {
    benchmark::DoNotOptimize(Formats().v2_bytes);
  }
  state.counters["v1_bytes"] = static_cast<double>(Formats().v1_bytes);
  state.counters["v2_bytes"] = static_cast<double>(Formats().v2_bytes);
  state.counters["vb_bytes"] = static_cast<double>(Formats().vb_bytes);
  state.counters["v1_over_v2"] = static_cast<double>(Formats().v1_bytes) /
                                 static_cast<double>(Formats().v2_bytes);
  state.counters["varbyte_over_bitpacked"] =
      static_cast<double>(Formats().vb_bytes) /
      static_cast<double>(Formats().v2_bytes);
}

// ----------------------------------------------------------- cold start

void BM_ColdStartRebuildMoaif01(benchmark::State& state) {
  for (auto _ : state) {
    auto file = ReadInvertedFile(Formats().v1_path);
    if (!file.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(file.ValueOrDie().num_postings());
  }
}

void BM_ColdStartMmapOpenMoaif02(benchmark::State& state) {
  for (auto _ : state) {
    auto reader = SegmentReader::Open(Formats().v2_path);
    if (!reader.ok()) state.SkipWithError("open failed");
    benchmark::DoNotOptimize(reader.ValueOrDie()->num_terms());
  }
}

// ------------------------------------------------------ scan throughput

template <typename SourceFn>
void ScanBench(benchmark::State& state, SourceFn&& source_fn) {
  const PostingSource& source = source_fn();
  int64_t postings = 0;
  for (auto _ : state) {
    uint64_t checksum = 0;
    postings = 0;
    for (TermId t : WorkloadTerms()) {
      for (auto cursor = source.OpenCursor(t); !cursor->at_end();
           cursor->next()) {
        checksum += cursor->doc() + cursor->tf();
        ++postings;
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * postings);
}

void BM_ScanRawVectors(benchmark::State& state) {
  // No-abstraction reference: direct vector iteration, what the storage
  // layer did before the cursor API.
  const InvertedFile& file = StorageDb().file();
  int64_t postings = 0;
  for (auto _ : state) {
    uint64_t checksum = 0;
    postings = 0;
    for (TermId t : WorkloadTerms()) {
      const PostingList& list = file.list(t);
      for (size_t i = 0; i < list.size(); ++i) {
        checksum += list[i].doc + list[i].tf;
        ++postings;
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * postings);
}

void BM_ScanInMemoryCursor(benchmark::State& state) {
  ScanBench(state, []() -> const PostingSource& {
    static const InMemoryPostingSource s(&StorageDb().file());
    return s;
  });
}

void BM_ScanSegmentCursorBitPacked(benchmark::State& state) {
  ScanBench(state, []() -> const PostingSource& {
    static const SegmentReader* reader =
        SegmentReader::Open(Formats().v2_path).ValueOrDie().release();
    return *reader;
  });
}

void BM_ScanSegmentCursorVarbyte(benchmark::State& state) {
  ScanBench(state, []() -> const PostingSource& {
    static const SegmentReader* reader =
        SegmentReader::Open(Formats().vb_path).ValueOrDie().release();
    return *reader;
  });
}

/// The block-batch scan idiom (PostingCursor::block_postings): one
/// virtual call per block instead of four per posting, so throughput is
/// decode-bound and the codec head-to-head measures the codecs, not the
/// shared dispatch overhead. This is the hot path BlockMaxAccumulate's
/// dense phase runs.
template <typename SourceFn>
void ScanBlocksBench(benchmark::State& state, SourceFn&& source_fn) {
  const PostingSource& source = source_fn();
  int64_t postings = 0;
  for (auto _ : state) {
    uint64_t checksum = 0;
    postings = 0;
    for (TermId t : WorkloadTerms()) {
      auto cursor = source.OpenCursor(t);
      while (!cursor->at_end()) {
        const DocId* docs;
        const uint32_t* tfs;
        const size_t m = cursor->block_postings(&docs, &tfs);
        if (m == 0) {
          checksum += cursor->doc() + cursor->tf();
          ++postings;
          cursor->next();
          continue;
        }
        for (size_t i = 0; i < m; ++i) checksum += docs[i] + tfs[i];
        postings += static_cast<int64_t>(m);
        cursor->shallow_advance(cursor->block_last_doc() + 1);
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * postings);
}

void BM_ScanSegmentBlocksBitPacked(benchmark::State& state) {
  ScanBlocksBench(state, []() -> const PostingSource& {
    static const SegmentReader* reader =
        SegmentReader::Open(Formats().v2_path).ValueOrDie().release();
    return *reader;
  });
}

void BM_ScanSegmentBlocksVarbyte(benchmark::State& state) {
  ScanBlocksBench(state, []() -> const PostingSource& {
    static const SegmentReader* reader =
        SegmentReader::Open(Formats().vb_path).ValueOrDie().release();
    return *reader;
  });
}

// --------------------------------------------------- advance throughput

template <typename SourceFn>
void AdvanceBench(benchmark::State& state, SourceFn&& source_fn) {
  const PostingSource& source = source_fn();
  // Skip-heavy access: stride through each list in jumps of ~1/32 of the
  // doc space, the pattern of merge-joins and sparse probes.
  const DocId stride =
      static_cast<DocId>(StorageDb().file().num_docs() / 32 + 1);
  int64_t probes = 0;
  for (auto _ : state) {
    uint64_t checksum = 0;
    probes = 0;
    for (TermId t : WorkloadTerms()) {
      auto cursor = source.OpenCursor(t);
      for (DocId target = stride; !cursor->at_end(); target += stride) {
        cursor->advance_to(target);
        checksum += cursor->doc();
        ++probes;
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * probes);
}

void BM_AdvanceInMemoryCursor(benchmark::State& state) {
  AdvanceBench(state, []() -> const PostingSource& {
    static const InMemoryPostingSource s(&StorageDb().file());
    return s;
  });
}

void BM_AdvanceSegmentCursorBitPacked(benchmark::State& state) {
  AdvanceBench(state, []() -> const PostingSource& {
    static const SegmentReader* reader =
        SegmentReader::Open(Formats().v2_path).ValueOrDie().release();
    return *reader;
  });
}

void BM_AdvanceSegmentCursorVarbyte(benchmark::State& state) {
  AdvanceBench(state, []() -> const PostingSource& {
    static const SegmentReader* reader =
        SegmentReader::Open(Formats().vb_path).ValueOrDie().release();
    return *reader;
  });
}

// ------------------------------------------- impact-order prefix access

/// Sorted access the way the Fagin family consumes it: only the top-k
/// impact-ordered postings of each workload term. The fragment directory
/// is what makes this lazy over a segment — without the sidecar the whole
/// list is decoded and sorted before the first posting comes out.
template <typename SourceFn>
void ImpactPrefixBench(benchmark::State& state, SourceFn&& source_fn) {
  const PostingSource& source = source_fn();
  const ScoringModel& model = StorageDb().model();
  const size_t prefix = 64;
  int64_t emitted = 0;
  for (auto _ : state) {
    uint64_t checksum = 0;
    emitted = 0;
    for (TermId t : WorkloadTerms()) {
      auto cursor = source.OpenImpactCursor(t, model);
      for (size_t i = 0; i < prefix && !cursor->at_end();
           ++i, cursor->next()) {
        checksum += cursor->doc();
        ++emitted;
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * emitted);
}

void BM_ImpactPrefixInMemory(benchmark::State& state) {
  ImpactPrefixBench(state, []() -> const PostingSource& {
    static const InMemoryPostingSource s(&StorageDb().file());
    return s;
  });
}

void BM_ImpactPrefixSegmentFragmentDir(benchmark::State& state) {
  ImpactPrefixBench(state, []() -> const PostingSource& {
    static const SegmentReader* reader =
        SegmentReader::Open(Formats().v2_path).ValueOrDie().release();
    return *reader;
  });
}

void BM_ImpactPrefixSegmentSingleFragment(benchmark::State& state) {
  // Same segment, sidecar stripped: the single-fragment fallback decodes
  // every block of the list up front.
  ImpactPrefixBench(state, []() -> const PostingSource& {
    static const SegmentReader* reader = [] {
      const std::string path = PathFor("index_nofrag.moaseg");
      std::filesystem::copy_file(
          Formats().v2_path, path,
          std::filesystem::copy_options::overwrite_existing);
      std::filesystem::remove(FragmentSidecarPath(path));
      return SegmentReader::Open(path).ValueOrDie().release();
    }();
    return *reader;
  });
}

BENCHMARK(BM_OnDiskSize)->Iterations(1);
BENCHMARK(BM_ColdStartRebuildMoaif01)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdStartMmapOpenMoaif02)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanRawVectors)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanInMemoryCursor)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanSegmentCursorBitPacked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanSegmentCursorVarbyte)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanSegmentBlocksBitPacked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanSegmentBlocksVarbyte)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceInMemoryCursor)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AdvanceSegmentCursorBitPacked)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AdvanceSegmentCursorVarbyte)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ImpactPrefixInMemory)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ImpactPrefixSegmentFragmentDir)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ImpactPrefixSegmentSingleFragment)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
