// E7 — Donjerkovic–Ramakrishnan probabilistic top-N (TR-99-1395, cited as
// DB-side state of the art): the cutoff is chosen from an estimated score
// distribution at a target confidence. Lower confidence = tighter cutoff =
// fewer survivors but more restarts.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "topn/probabilistic.h"

namespace moa {
namespace {

void BM_Probabilistic(benchmark::State& state) {
  const double confidence = static_cast<double>(state.range(0)) / 100.0;
  MmDatabase& db = benchutil::Db();
  ProbabilisticOptions opts;
  opts.confidence = confidence;
  ExecOptions eopts;
  eopts.strategy_options = opts;
  double work = 0.0;
  int64_t bytes = 0;
  int restarts = 0;
  for (auto _ : state) {
    work = 0.0;
    bytes = 0;
    restarts = 0;
    for (const Query& q : benchutil::Workload()) {
      auto r = db.Execute(PhysicalStrategy::kProbabilistic, q, 10, eopts);
      work += r.ValueOrDie().stats.cost.Scalar();
      bytes += r.ValueOrDie().stats.cost.bytes_touched;
      restarts += r.ValueOrDie().stats.restarts;
    }
  }
  state.counters["confidence_pct"] = 100.0 * confidence;
  state.counters["work"] = work;
  state.counters["bytes_materialized"] = static_cast<double>(bytes);
  state.counters["restarts"] = restarts;
}
BENCHMARK(BM_Probabilistic)
    ->Arg(50)->Arg(80)->Arg(90)->Arg(95)->Arg(99)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
