// E9 — Step 3: the centralized cost model. For every strategy, compares the
// model's predicted scalar cost with the measured scalar cost over the
// workload, and reports whether the *ranking* of strategies matches (which
// is what a planner needs; absolute calibration matters less).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "optimizer/cost_model.h"

namespace moa {
namespace {

void BM_CostModelPerStrategy(benchmark::State& state) {
  const auto strategy =
      static_cast<PhysicalStrategy>(state.range(0));
  MmDatabase& db = benchutil::Db();
  CardinalityEstimator est(&db.file(), &db.fragmentation());
  CostModel model(&est);

  double predicted = 0.0, measured = 0.0;
  for (auto _ : state) {
    predicted = measured = 0.0;
    for (const Query& q : benchutil::Workload()) {
      predicted += model.Estimate(strategy, q, 10).scalar;
      auto r = db.Execute(strategy, q, 10);
      measured += r.ValueOrDie().stats.cost.Scalar();
    }
  }
  state.SetLabel(StrategyName(strategy));
  state.counters["predicted"] = predicted;
  state.counters["measured"] = measured;
  state.counters["ratio"] = measured > 0 ? predicted / measured : 0.0;
}
// Range bounds come from the exec registry: new registered strategies are
// swept automatically.
BENCHMARK(BM_CostModelPerStrategy)
    ->DenseRange(0, static_cast<int>(AllStrategies().size()) - 1, 1)
    ->Unit(benchmark::kMillisecond);

/// Rank agreement: Spearman correlation between predicted and measured
/// strategy orderings (averaged over queries). The planner only needs the
/// cheap strategies ranked first.
void BM_CostModelRankAgreement(benchmark::State& state) {
  MmDatabase& db = benchutil::Db();
  CardinalityEstimator est(&db.file(), &db.fragmentation());
  CostModel model(&est);
  const auto strategies = AllStrategies();

  double mean_rho = 0.0;
  double top1_hits = 0.0;
  for (auto _ : state) {
    mean_rho = 0.0;
    top1_hits = 0.0;
    for (const Query& q : benchutil::Workload()) {
      std::vector<double> pred, meas;
      for (PhysicalStrategy s : strategies) {
        pred.push_back(model.Estimate(s, q, 10).scalar);
        meas.push_back(
            db.Execute(s, q, 10).ValueOrDie().stats.cost.Scalar());
      }
      // Spearman rho via rank vectors.
      auto ranks = [](const std::vector<double>& v) {
        std::vector<size_t> idx(v.size());
        for (size_t i = 0; i < v.size(); ++i) idx[i] = i;
        std::sort(idx.begin(), idx.end(),
                  [&](size_t a, size_t b) { return v[a] < v[b]; });
        std::vector<double> r(v.size());
        for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
        return r;
      };
      const auto rp = ranks(pred);
      const auto rm = ranks(meas);
      double d2 = 0.0;
      for (size_t i = 0; i < rp.size(); ++i) {
        d2 += (rp[i] - rm[i]) * (rp[i] - rm[i]);
      }
      const double k = static_cast<double>(rp.size());
      mean_rho += 1.0 - 6.0 * d2 / (k * (k * k - 1.0));
      // Did the model's cheapest match the measured cheapest?
      const size_t pbest = static_cast<size_t>(
          std::min_element(pred.begin(), pred.end()) - pred.begin());
      const size_t mbest = static_cast<size_t>(
          std::min_element(meas.begin(), meas.end()) - meas.begin());
      top1_hits += (pbest == mbest) ? 1.0 : 0.0;
    }
    mean_rho /= static_cast<double>(benchutil::Workload().size());
    top1_hits /= static_cast<double>(benchutil::Workload().size());
  }
  state.counters["spearman_rho"] = mean_rho;
  state.counters["top1_agreement_pct"] = 100.0 * top1_hits;
}
BENCHMARK(BM_CostModelRankAgreement)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
