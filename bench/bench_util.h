// Shared benchmark fixtures: one larger collection + workloads, built once
// per bench binary. All seeds fixed: every run reproduces the same numbers
// up to machine timing jitter; the CostCounters-based counters are exact.
#ifndef MOA_BENCH_BENCH_UTIL_H_
#define MOA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <vector>

#include "engine/database.h"
#include "exec/registry.h"
#include "ir/query_gen.h"

namespace moa {
namespace benchutil {

/// Resolves a registered strategy by name (exec-registry backed); aborts
/// loudly on unknown names so bench setup errors cannot pass silently.
inline PhysicalStrategy StrategyOrDie(std::string_view name) {
  std::optional<PhysicalStrategy> s = StrategyFromName(name);
  if (!s.has_value()) {
    std::fprintf(stderr, "unknown strategy name: %.*s\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return *s;
}

/// TREC-FT-scale-ish synthetic database (scaled to laptop seconds):
/// 20k docs, 30k vocabulary, Zipf skew 1.0, BM25, 5% fragmentation.
inline MmDatabase& Db() {
  static MmDatabase* db = [] {
    DatabaseConfig config;
    config.collection.num_docs = 20000;
    config.collection.vocabulary = 30000;
    config.collection.mean_doc_length = 150;
    config.collection.zipf_skew = 1.0;
    config.collection.seed = 900913;
    config.fragmentation.small_volume_fraction = 0.05;
    config.scoring = ScoringModelKind::kBm25;
    return MmDatabase::Open(config).ValueOrDie().release();
  }();
  return *db;
}

/// Mixed query workload (the paper's retrieval setting: natural-language
/// queries hit both frequent and rare terms).
inline const std::vector<Query>& Workload() {
  static const std::vector<Query>* queries = [] {
    QueryWorkloadConfig config;
    config.num_queries = 30;
    config.terms_per_query = 4;
    config.distribution = QueryTermDistribution::kMixed;
    config.seed = 31;
    return new std::vector<Query>(
        GenerateQueries(Db().collection(), config).ValueOrDie());
  }();
  return *queries;
}

/// Zipf (head-heavy) workload, for experiments where query terms follow
/// natural language frequency.
inline const std::vector<Query>& ZipfWorkload() {
  static const std::vector<Query>* queries = [] {
    QueryWorkloadConfig config;
    config.num_queries = 30;
    config.terms_per_query = 4;
    config.distribution = QueryTermDistribution::kZipf;
    config.seed = 47;
    return new std::vector<Query>(
        GenerateQueries(Db().collection(), config).ValueOrDie());
  }();
  return *queries;
}

}  // namespace benchutil
}  // namespace moa

#endif  // MOA_BENCH_BENCH_UTIL_H_
