// E6 — Carey–Kossmann STOP AFTER placements ("Reducing the Braking
// Distance of an SQL Query Engine", cited by the paper as the DB-side state
// of the art).
//
// Sweeps the estimate bias of the aggressive placement: with honest
// estimates the aggressive plan materializes far fewer tuples than the
// conservative one; with over-confident cutoffs it pays restarts.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "topn/stop_after.h"

namespace moa {
namespace {

void BM_StopAfterConservative(benchmark::State& state) {
  MmDatabase& db = benchutil::Db();
  double work = 0.0;
  int64_t bytes = 0;
  for (auto _ : state) {
    work = 0.0;
    bytes = 0;
    for (const Query& q : benchutil::Workload()) {
      auto r = db.Execute(PhysicalStrategy::kStopAfterConservative, q, 10);
      work += r.ValueOrDie().stats.cost.Scalar();
      bytes += r.ValueOrDie().stats.cost.bytes_touched;
    }
  }
  state.counters["work"] = work;
  state.counters["bytes_materialized"] = static_cast<double>(bytes);
  state.counters["restarts"] = 0;
}
BENCHMARK(BM_StopAfterConservative)->Unit(benchmark::kMillisecond);

void BM_StopAfterAggressive(benchmark::State& state) {
  // bias is percent: 100 = honest estimate, 50 = cautious, 500/2000 =
  // over-confident cutoffs that trigger the restart protocol.
  const double bias = static_cast<double>(state.range(0)) / 100.0;
  MmDatabase& db = benchutil::Db();
  StopAfterOptions opts;
  opts.estimate_bias = bias;
  ExecOptions eopts;
  eopts.strategy_options = opts;
  double work = 0.0;
  int64_t bytes = 0;
  int restarts = 0;
  for (auto _ : state) {
    work = 0.0;
    bytes = 0;
    restarts = 0;
    for (const Query& q : benchutil::Workload()) {
      auto r =
          db.Execute(PhysicalStrategy::kStopAfterAggressive, q, 10, eopts);
      work += r.ValueOrDie().stats.cost.Scalar();
      bytes += r.ValueOrDie().stats.cost.bytes_touched;
      restarts += r.ValueOrDie().stats.restarts;
    }
  }
  state.counters["bias"] = bias;
  state.counters["work"] = work;
  state.counters["bytes_materialized"] = static_cast<double>(bytes);
  state.counters["restarts"] = restarts;
}
BENCHMARK(BM_StopAfterAggressive)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
