// E3 — the paper's safe variant: "I inserted a check early in the query
// plan that is able to detect when the answer quality would be better when
// the other fragment would be used. This allows query processing to switch
// accordingly in time. This improved the answer quality significantly but
// lowered the speed also quite a lot."
//
// Sweeps the switch threshold (0 = always switch when the large fragment
// could matter; large = rarely switch):
//   overlap_pct    — answer quality (should be ~100 at threshold 0)
//   work_ratio_pct — work vs unfragmented (should sit between the unsafe
//                    small-fragment ratio and 100%)
//   switch_pct     — fraction of queries that processed the large fragment
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ir/metrics.h"
#include "topn/fragment_topn.h"

namespace moa {
namespace {

void BM_QualitySwitch(benchmark::State& state) {
  const double threshold = static_cast<double>(state.range(0)) / 100.0;
  MmDatabase& db = benchutil::Db();
  QualitySwitchOptions opts;
  opts.switch_threshold = threshold;
  opts.mode = LargeFragmentMode::kFullScan;
  ExecOptions eopts;
  eopts.strategy_options = opts;

  std::vector<QualityReport> reports;
  double work = 0.0, full_work = 0.0;
  int switched = 0;
  for (auto _ : state) {
    reports.clear();
    work = full_work = 0.0;
    switched = 0;
    for (const Query& q : benchutil::Workload()) {
      auto r = db.Execute(PhysicalStrategy::kQualitySwitchFull, q, 10, eopts);
      TopNResult full =
          db.Execute(PhysicalStrategy::kFullSort, q, 10).ValueOrDie();
      auto truth = db.GroundTruth(q, 10);
      auto scores = db.GroundTruthScores(q);
      reports.push_back(
          EvaluateQuality(r.ValueOrDie().items, truth, scores));
      work += r.ValueOrDie().stats.cost.Scalar();
      full_work += full.stats.cost.Scalar();
      switched += r.ValueOrDie().stats.used_large_fragment ? 1 : 0;
    }
  }
  state.counters["overlap_pct"] = 100.0 * MeanOverlap(reports);
  state.counters["work_ratio_pct"] = 100.0 * work / full_work;
  state.counters["switch_pct"] =
      100.0 * switched / static_cast<double>(benchutil::Workload().size());
}
// Threshold expressed in percent: 0, 25, 50, 100, 200, 400.
BENCHMARK(BM_QualitySwitch)
    ->Arg(0)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
