// E8 — the paper's Example 1, measured: select(projecttobag(L), lo, hi)
// versus the inter-object rewrite projecttobag(select(L, lo, hi)) and the
// order-aware projecttobag(select_sorted(L, lo, hi)).
//
// Sweeps list size and selectivity. Expected shape: the rewrite wins by
// roughly the inverse selectivity on the cast cost; the order-aware variant
// additionally replaces the O(n) select scan by O(log n + k).
// Also demonstrates (as a counter) that the intra-object (E-ADT) optimizer
// alone changes nothing: rewritten_by_eadt == 0.
#include <benchmark/benchmark.h>

#include "algebra/evaluator.h"
#include "common/cost_ticker.h"
#include "optimizer/interobject_rules.h"
#include "optimizer/intra_object.h"

namespace moa {
namespace {

ExprPtr BigSortedList(int64_t size) {
  ValueVec v;
  v.reserve(static_cast<size_t>(size));
  for (int64_t i = 0; i < size; ++i) v.push_back(Value::Int(i));
  return Expr::Const(Value::List(std::move(v)));
}

ExprPtr Example1Expr(int64_t size, int64_t lo, int64_t hi) {
  return Expr::Apply(
      "BAG.select",
      {Expr::Apply("LIST.projecttobag", {BigSortedList(size)}),
       Expr::Const(Value::Int(lo)), Expr::Const(Value::Int(hi))});
}

void BM_Example1(benchmark::State& state) {
  const int64_t size = state.range(0);
  // selectivity in permille.
  const int64_t permille = state.range(1);
  const int64_t lo = size / 3;
  const int64_t hi = lo + size * permille / 1000;

  ExprPtr original = Example1Expr(size, lo, hi);
  RewriteTrace eadt_trace;
  ExprPtr eadt = IntraObjectOnlyOptimize(original,
                                         ExtensionRegistry::Default(),
                                         &eadt_trace);
  ExprPtr rewritten = RewriteToFixpoint(original, FullRuleSet(),
                                        ExtensionRegistry::Default());

  double cost_original = 0.0, cost_rewritten = 0.0;
  for (auto _ : state) {
    CostScope s1;
    auto r1 = Evaluate(original);
    cost_original = s1.Snapshot().Scalar();
    CostScope s2;
    auto r2 = Evaluate(rewritten);
    cost_rewritten = s2.Snapshot().Scalar();
    benchmark::DoNotOptimize(r1.ok());
    benchmark::DoNotOptimize(r2.ok());
  }
  state.counters["selectivity_permille"] = static_cast<double>(permille);
  state.counters["cost_original"] = cost_original;
  state.counters["cost_rewritten"] = cost_rewritten;
  state.counters["speedup_x"] = cost_original / cost_rewritten;
  state.counters["rewritten_by_eadt"] =
      Expr::Equal(eadt, original) ? 0.0 : 1.0;
}
BENCHMARK(BM_Example1)
    ->Args({10000, 1})->Args({10000, 10})->Args({10000, 100})
    ->Args({100000, 1})->Args({100000, 10})->Args({100000, 100})
    ->Args({1000000, 10})
    ->Unit(benchmark::kMillisecond);

/// Wall-clock of the two plans at one representative point.
void BM_Example1WallOriginal(benchmark::State& state) {
  ExprPtr e = Example1Expr(100000, 33333, 34333);
  for (auto _ : state) {
    auto r = Evaluate(e);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_Example1WallOriginal)->Unit(benchmark::kMicrosecond);

void BM_Example1WallRewritten(benchmark::State& state) {
  ExprPtr e = RewriteToFixpoint(Example1Expr(100000, 33333, 34333),
                                FullRuleSet(), ExtensionRegistry::Default());
  for (auto _ : state) {
    auto r = Evaluate(e);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_Example1WallRewritten)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
