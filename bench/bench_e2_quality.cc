// E2 — Step-1 quality claim: "The answer quality dropped more than 30% due
// to the unsafe nature of this technique."
//
// Measures, per fragment cutoff, the quality of unsafe small-fragment-only
// answers against the exact top-10:
//   overlap_pct       — mean precision@10 vs the exact top-10
//   quality_drop_pct  — 100 - overlap_pct (paper: > 30 at the ~5% cutoff)
//   score_ratio_pct   — retained exact-score mass
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/registry.h"
#include "ir/metrics.h"

namespace moa {
namespace {

void BM_UnsafeQuality(benchmark::State& state) {
  const double cutoff = static_cast<double>(state.range(0)) / 100.0;
  MmDatabase& db = benchutil::Db();
  FragmentationPolicy policy;
  policy.small_volume_fraction = cutoff;
  Fragmentation frag = Fragmentation::Build(db.file(), policy);

  const StrategyRegistry& registry = StrategyRegistry::Global();
  ExecContext ctx = db.exec_context();
  ctx.fragmentation = &frag;

  std::vector<QualityReport> reports;
  for (auto _ : state) {
    reports.clear();
    for (const Query& q : benchutil::Workload()) {
      TopNResult small =
          registry.Execute(PhysicalStrategy::kSmallFragment, ctx, q, 10)
              .ValueOrDie();
      auto truth = db.GroundTruth(q, 10);
      auto scores = db.GroundTruthScores(q);
      reports.push_back(EvaluateQuality(small.items, truth, scores));
    }
  }
  state.counters["overlap_pct"] = 100.0 * MeanOverlap(reports);
  state.counters["quality_drop_pct"] = 100.0 * (1.0 - MeanOverlap(reports));
  state.counters["score_ratio_pct"] = 100.0 * MeanScoreRatio(reports);
}
BENCHMARK(BM_UnsafeQuality)
    ->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
