// E12 (extension) — the paper's stated target workload: "integrated top N
// queries on several content and alpha numerical types". Sweeps predicate
// selectivity and reports the filter-first vs rank-first crossover plus
// what the auto chooser picks — the inter-type optimization decision the
// paper's Step 3 is meant to make.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "engine/hybrid.h"

namespace moa {
namespace {

const std::vector<double>& Attribute() {
  static const std::vector<double>* attr = [] {
    const size_t n = benchutil::Db().file().num_docs();
    Rng rng(2024);
    auto* v = new std::vector<double>(n);
    for (size_t i = 0; i < n; ++i) (*v)[i] = rng.NextDouble() * 100.0;
    return v;
  }();
  return *attr;
}

void BM_HybridPlans(benchmark::State& state) {
  // selectivity in percent: predicate [0, sel).
  const double sel = static_cast<double>(state.range(0));
  MmDatabase& db = benchutil::Db();
  AttributePredicate pred{0.0, sel};

  double ff_work = 0.0, rf_work = 0.0;
  int rf_restarts = 0;
  int auto_rank_first = 0;
  for (auto _ : state) {
    ff_work = rf_work = 0.0;
    rf_restarts = 0;
    auto_rank_first = 0;
    for (const Query& q : benchutil::Workload()) {
      HybridOptions ff, rf, aut;
      ff.plan = HybridPlan::kFilterFirst;
      rf.plan = HybridPlan::kRankFirst;
      auto r1 = HybridTopN(db.file(), db.model(), q, Attribute(), pred, 10, ff);
      auto r2 = HybridTopN(db.file(), db.model(), q, Attribute(), pred, 10, rf);
      ff_work += r1.ValueOrDie().stats.cost.Scalar();
      rf_work += r2.ValueOrDie().stats.cost.Scalar();
      rf_restarts += r2.ValueOrDie().stats.restarts;
      auto_rank_first +=
          ChooseHybridPlan(Attribute(), pred, aut) == HybridPlan::kRankFirst
              ? 1
              : 0;
    }
  }
  state.counters["selectivity_pct"] = sel;
  state.counters["filter_first_work"] = ff_work;
  state.counters["rank_first_work"] = rf_work;
  state.counters["rf_over_ff"] = rf_work / ff_work;
  state.counters["rf_restarts"] = rf_restarts;
  state.counters["auto_picks_rank_first_pct"] =
      100.0 * auto_rank_first /
      static_cast<double>(benchutil::Workload().size());
}
BENCHMARK(BM_HybridPlans)
    ->Arg(1)->Arg(5)->Arg(20)->Arg(50)->Arg(90)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
