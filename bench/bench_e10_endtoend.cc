// E10 — the end-to-end goal: "a running optimizer tuned and tested for top
// N MM queries". Ablation: the cost-based planner against every fixed safe
// strategy, across query mixes and N. Expected shape: the optimizer tracks
// the best fixed strategy everywhere, while every fixed strategy loses
// somewhere — the argument for having an optimizer at all.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ir/query_gen.h"

namespace moa {
namespace {

const std::vector<Query>& MixFor(int mix) {
  switch (mix) {
    case 0: return benchutil::ZipfWorkload();
    default: return benchutil::Workload();
  }
}

void BM_OptimizerChoice(benchmark::State& state) {
  const int mix = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  MmDatabase& db = benchutil::Db();

  double optimizer_work = 0.0;
  double best_fixed_work = 0.0;
  double worst_fixed_work = 0.0;
  for (auto _ : state) {
    optimizer_work = 0.0;
    // Fixed safe strategies to ablate against, selected by registry name.
    const std::vector<PhysicalStrategy> fixed = {
        benchutil::StrategyOrDie("full_sort"),
        benchutil::StrategyOrDie("heap"),
        benchutil::StrategyOrDie("fagin_ta"),
        benchutil::StrategyOrDie("fagin_nra"),
        benchutil::StrategyOrDie("quality_switch_full")};
    std::vector<double> fixed_work(fixed.size(), 0.0);
    for (const Query& q : MixFor(mix)) {
      SearchOptions opts;
      opts.n = n;
      auto r = db.Search(q, opts);
      optimizer_work += r.ValueOrDie().top.stats.cost.Scalar();
      for (size_t i = 0; i < fixed.size(); ++i) {
        auto rf = db.Execute(fixed[i], q, n);
        fixed_work[i] += rf.ValueOrDie().stats.cost.Scalar();
      }
    }
    best_fixed_work = *std::min_element(fixed_work.begin(), fixed_work.end());
    worst_fixed_work = *std::max_element(fixed_work.begin(), fixed_work.end());
  }
  state.SetLabel(mix == 0 ? "zipf_queries" : "mixed_queries");
  state.counters["optimizer_work"] = optimizer_work;
  state.counters["best_fixed_work"] = best_fixed_work;
  state.counters["worst_fixed_work"] = worst_fixed_work;
  state.counters["vs_best_pct"] = 100.0 * optimizer_work / best_fixed_work;
  state.counters["vs_worst_pct"] = 100.0 * optimizer_work / worst_fixed_work;
}
BENCHMARK(BM_OptimizerChoice)
    ->Args({0, 10})->Args({0, 100})
    ->Args({1, 10})->Args({1, 100})
    ->Unit(benchmark::kMillisecond);

/// The unsafe frontier: allowing unsafe strategies, how much work does the
/// planner shave relative to safe-only, per N? (The crossover where the
/// fragment-only plan stops being chosen is the interesting output.)
void BM_UnsafeFrontier(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MmDatabase& db = benchutil::Db();
  double safe_work = 0.0, unsafe_work = 0.0;
  int unsafe_chosen = 0;
  for (auto _ : state) {
    safe_work = unsafe_work = 0.0;
    unsafe_chosen = 0;
    for (const Query& q : benchutil::Workload()) {
      SearchOptions safe_opts;
      safe_opts.n = n;
      auto rs = db.Search(q, safe_opts);
      safe_work += rs.ValueOrDie().top.stats.cost.Scalar();
      SearchOptions unsafe_opts;
      unsafe_opts.n = n;
      unsafe_opts.safe_only = false;
      auto ru = db.Search(q, unsafe_opts);
      unsafe_work += ru.ValueOrDie().top.stats.cost.Scalar();
      unsafe_chosen += IsSafeStrategy(ru.ValueOrDie().strategy) ? 0 : 1;
    }
  }
  state.counters["safe_work"] = safe_work;
  state.counters["unsafe_work"] = unsafe_work;
  state.counters["saving_pct"] = 100.0 * (1.0 - unsafe_work / safe_work);
  state.counters["unsafe_chosen_pct"] =
      100.0 * unsafe_chosen /
      static_cast<double>(benchutil::Workload().size());
}
BENCHMARK(BM_UnsafeFrontier)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
