// E11 (extension) — the IR-side pruning techniques the paper's State of the
// Art builds on (Brown [Bro95] over INQUERY; Moffat–Zobel accumulator
// strategies): term-at-a-time max-score pruning, quit mode, and the
// accumulator-budget sweep. Safe `continue` must match exact quality;
// `quit` and tight budgets trade quality for work.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ir/metrics.h"
#include "topn/maxscore.h"

namespace moa {
namespace {

void RunMaxScore(benchmark::State& state, PhysicalStrategy strategy,
                 const MaxScoreOptions& opts) {
  MmDatabase& db = benchutil::Db();
  ExecOptions eopts;
  eopts.strategy_options = opts;
  double work = 0.0;
  int64_t accumulators = 0;
  std::vector<QualityReport> reports;
  for (auto _ : state) {
    work = 0.0;
    accumulators = 0;
    reports.clear();
    for (const Query& q : benchutil::Workload()) {
      auto r = db.Execute(strategy, q, 10, eopts);
      work += r.ValueOrDie().stats.cost.Scalar();
      accumulators += r.ValueOrDie().stats.candidates;
      auto truth = db.GroundTruth(q, 10);
      auto scores = db.GroundTruthScores(q);
      reports.push_back(
          EvaluateQuality(r.ValueOrDie().items, truth, scores));
    }
  }
  state.counters["work"] = work;
  state.counters["accumulators"] = static_cast<double>(accumulators);
  state.counters["overlap_pct"] = 100.0 * MeanOverlap(reports);
}

void BM_MaxScoreContinue(benchmark::State& state) {
  RunMaxScore(state, benchutil::StrategyOrDie("maxscore"), MaxScoreOptions{});
}
BENCHMARK(BM_MaxScoreContinue)->Unit(benchmark::kMillisecond);

void BM_MaxScoreQuit(benchmark::State& state) {
  RunMaxScore(state, benchutil::StrategyOrDie("quit_prune"),
              MaxScoreOptions{});
}
BENCHMARK(BM_MaxScoreQuit)->Unit(benchmark::kMillisecond);

void BM_AccumulatorBudget(benchmark::State& state) {
  MaxScoreOptions opts;
  opts.accumulator_budget = static_cast<size_t>(state.range(0));
  RunMaxScore(state, benchutil::StrategyOrDie("maxscore"), opts);
  state.counters["budget"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AccumulatorBudget)
    ->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)->Arg(0 + 25600)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
