// E4 — "Currently I'm working on recoding the second fragment and plan to
// introduce a non-dense index in the system to speed up processing the
// large fragment. This even will allow for extra computations while still
// decreasing execution time, bringing the answer quality nearer to or even
// on the same level as in the unfragmented case."
//
// Compares, per sparse-index block size and candidate-pool size:
//   work_ratio_pct — work vs unfragmented full execution (should stay well
//                    below 100 while doing the "extra computations")
//   overlap_pct    — quality (should approach 100, far above unsafe E2)
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ir/metrics.h"
#include "topn/fragment_topn.h"

namespace moa {
namespace {

void BM_SparseProbe(benchmark::State& state) {
  const uint32_t block = static_cast<uint32_t>(state.range(0));
  const size_t pool = static_cast<size_t>(state.range(1));
  MmDatabase& db = benchutil::Db();
  // Per-sweep cache: keeps each configuration's build cost inside its own
  // measurement instead of warming the database's shared cache.
  SparseIndexCache cache;
  QualitySwitchOptions opts;
  opts.mode = LargeFragmentMode::kSparseProbe;
  opts.sparse_block = block;
  opts.candidate_pool = pool;
  opts.sparse_cache = &cache;
  ExecOptions eopts;
  eopts.strategy_options = opts;

  std::vector<QualityReport> reports;
  double work = 0.0, full_work = 0.0;
  for (auto _ : state) {
    reports.clear();
    work = full_work = 0.0;
    for (const Query& q : benchutil::Workload()) {
      auto r =
          db.Execute(PhysicalStrategy::kQualitySwitchSparse, q, 10, eopts);
      TopNResult full =
          db.Execute(PhysicalStrategy::kFullSort, q, 10).ValueOrDie();
      auto truth = db.GroundTruth(q, 10);
      auto scores = db.GroundTruthScores(q);
      reports.push_back(EvaluateQuality(r.ValueOrDie().items, truth, scores));
      work += r.ValueOrDie().stats.cost.Scalar();
      full_work += full.stats.cost.Scalar();
    }
  }
  state.counters["block"] = block;
  state.counters["pool"] = static_cast<double>(pool);
  state.counters["work_ratio_pct"] = 100.0 * work / full_work;
  state.counters["overlap_pct"] = 100.0 * MeanOverlap(reports);
  state.counters["score_ratio_pct"] = 100.0 * MeanScoreRatio(reports);
}
BENCHMARK(BM_SparseProbe)
    ->Args({16, 40})->Args({64, 40})->Args({256, 40})
    ->Args({64, 20})->Args({64, 80})->Args({64, 160})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
