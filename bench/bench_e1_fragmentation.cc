// E1 — Step-1 headline claim: "processing only a small portion of the data
// of approximately 5% of the unfragmented size, containing the 95% most
// interesting terms, I was able to speed up query processing ... with at
// least 60%".
//
// Sweeps the small-fragment volume cutoff and reports, per cutoff:
//   small_volume_pct — actual postings volume share of the small fragment
//   term_pct         — share of distinct terms it covers
//   work_ratio_pct   — small-fragment work / unfragmented work (scalar cost)
//   speedup_pct      — 100 * (1 - work_ratio); the paper expects >= 60 at
//                      the ~5% cutoff
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/registry.h"

namespace moa {
namespace {

void BM_FragmentationSpeedup(benchmark::State& state) {
  const double cutoff = static_cast<double>(state.range(0)) / 100.0;
  MmDatabase& db = benchutil::Db();
  FragmentationPolicy policy;
  policy.small_volume_fraction = cutoff;
  Fragmentation frag = Fragmentation::Build(db.file(), policy);

  // Same registry path as the engine, with this sweep's fragmentation
  // swapped into the context.
  const StrategyRegistry& registry = StrategyRegistry::Global();
  ExecContext ctx = db.exec_context();
  ctx.fragmentation = &frag;

  double small_work = 0.0, full_work = 0.0;
  for (auto _ : state) {
    small_work = full_work = 0.0;
    for (const Query& q : benchutil::Workload()) {
      TopNResult small =
          registry.Execute(PhysicalStrategy::kSmallFragment, ctx, q, 10)
              .ValueOrDie();
      TopNResult full =
          registry.Execute(PhysicalStrategy::kFullSort, ctx, q, 10)
              .ValueOrDie();
      small_work += small.stats.cost.Scalar();
      full_work += full.stats.cost.Scalar();
      benchmark::DoNotOptimize(small.items.data());
      benchmark::DoNotOptimize(full.items.data());
    }
  }
  state.counters["small_volume_pct"] = 100.0 * frag.small_volume_fraction();
  state.counters["term_pct"] = 100.0 * frag.small_term_fraction();
  state.counters["work_ratio_pct"] = 100.0 * small_work / full_work;
  state.counters["speedup_pct"] = 100.0 * (1.0 - small_work / full_work);
}
BENCHMARK(BM_FragmentationSpeedup)
    ->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

/// Wall-clock companion: latency of small-fragment vs unfragmented
/// execution at the paper's 5% cutoff.
/// Micro-latency benches instantiate the executor once outside the timed
/// loop so they time the operator, not registry dispatch.
void RunLatency(benchmark::State& state, PhysicalStrategy strategy) {
  MmDatabase& db = benchutil::Db();
  const ExecContext ctx = db.exec_context();
  auto exec =
      StrategyRegistry::Global().Make(strategy, ExecOptions{}).ValueOrDie();
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = benchutil::Workload()[i++ % benchutil::Workload().size()];
    TopNResult r = exec->Execute(ctx, q, 10).ValueOrDie();
    benchmark::DoNotOptimize(r.items.data());
  }
}

void BM_UnfragmentedLatency(benchmark::State& state) {
  RunLatency(state, PhysicalStrategy::kFullSort);
}
BENCHMARK(BM_UnfragmentedLatency)->Unit(benchmark::kMicrosecond);

void BM_SmallFragmentLatency(benchmark::State& state) {
  RunLatency(state, PhysicalStrategy::kSmallFragment);
}
BENCHMARK(BM_SmallFragmentLatency)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace moa

BENCHMARK_MAIN();
